"""Machine-readable micro-benchmark runner.

Times the simulator's hot paths with plain ``perf_counter`` loops (no
pytest dependency) and emits a JSON report so the performance
trajectory of the repo can be tracked PR-over-PR::

    PYTHONPATH=src python benchmarks/run_bench.py                 # full
    PYTHONPATH=src python benchmarks/run_bench.py --quick         # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py -o BENCH_2.json

Schema of the emitted file::

    {
      "schema": "repro-bench/1",
      "environment": {"python": ..., "numpy": ...},
      "parameters": {"nodes": ..., "particles": ..., "rounds": ...},
      "benches": {"<name>": {"mean_s": ..., "stddev_s": ..., "rounds": N}},
      "derived": {"fast_vs_reference_speedup": ...}
    }

The headline number is ``fast_vs_reference_speedup``: wall-clock ratio
of one reference-engine cycle to one fast-engine cycle on the exp2
smoke scenario (n=1000, k=16, r=k).  The floor is 10x; BENCH_1.json
(pre-scenario-API) measured 19x, and BENCH_2.json confirms the
scenario-layer refactor kept the fast path's margin.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.fastpath import FastEngine
from repro.core.runner import _build_network
from repro.functions.base import get_function
from repro.pso.swarm import Swarm
from repro.simulator.engine import CycleDrivenEngine
from repro.utils.config import ExperimentConfig, PSOConfig
from repro.utils.rng import SeedSequenceTree

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_2.json"


def _time(fn, rounds: int, warmup: int = 1) -> dict[str, float]:
    """Median-of-rounds timing; mean/stddev reported for the record."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "mean_s": statistics.fmean(samples),
        "stddev_s": statistics.pstdev(samples),
        "median_s": statistics.median(samples),
        "rounds": rounds,
    }


def engine_pair(nodes: int, particles: int):
    """A fast and a reference engine on the same scenario, with a
    budget far beyond the timed cycles so stepping never stalls."""
    config = ExperimentConfig(
        function="sphere",
        nodes=nodes,
        particles_per_node=particles,
        total_evaluations=10**9,
        gossip_cycle=particles,
        seed=1,
    )
    fast = FastEngine(config)

    tree = SeedSequenceTree(config.seed).subtree("rep", 0)
    network, _ = _build_network(config, get_function(config.function), tree)
    reference = CycleDrivenEngine(network, rng=tree.rng("engine"))
    return fast, reference


def run_benches(nodes: int, particles: int, rounds: int, ref_rounds: int) -> dict:
    benches: dict[str, dict] = {}

    f = get_function("sphere")
    pts = f.sample_uniform(np.random.default_rng(0), 1000)
    benches["sphere_batch_1k"] = _time(lambda: f.batch(pts), rounds)

    swarm = Swarm(f, PSOConfig(particles=16), np.random.default_rng(0))
    benches["swarm_step_cycle_k16"] = _time(swarm.step_cycle, rounds)

    swarm2 = Swarm(f, PSOConfig(particles=16), np.random.default_rng(0))
    benches["swarm_step_particle"] = _time(swarm2.step_particle, rounds)

    fast, reference = engine_pair(nodes, particles)
    benches[f"fast_engine_cycle_n{nodes}_k{particles}"] = _time(
        fast.run_one_cycle, rounds, warmup=2
    )
    benches[f"reference_engine_cycle_n{nodes}_k{particles}"] = _time(
        lambda: reference.run(1), ref_rounds, warmup=1
    )

    speedup = (
        benches[f"reference_engine_cycle_n{nodes}_k{particles}"]["median_s"]
        / benches[f"fast_engine_cycle_n{nodes}_k{particles}"]["median_s"]
    )
    return {
        "schema": "repro-bench/1",
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "parameters": {
            "nodes": nodes,
            "particles": particles,
            "rounds": rounds,
            "reference_rounds": ref_rounds,
        },
        "benches": benches,
        "derived": {"fast_vs_reference_speedup": round(speedup, 2)},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "-o", "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"JSON report path (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small scenario + few rounds (CI smoke): n=200, 5 rounds",
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--particles", type=int, default=16)
    args = parser.parse_args(argv)

    if args.quick:
        nodes, rounds, ref_rounds = args.nodes or 200, 5, 2
    else:
        nodes, rounds, ref_rounds = args.nodes or 1000, 20, 5

    report = run_benches(nodes, args.particles, rounds, ref_rounds)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    for name, stats in report["benches"].items():
        print(f"{name:45s} {1e3 * stats['median_s']:10.3f} ms (median)")
    print(f"{'fast_vs_reference_speedup':45s} {report['derived']['fast_vs_reference_speedup']:10.2f} x")
    print(f"report written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
