"""Ablation A5: solver diversification (the paper's future work).

Heterogeneous networks mixing PSO, differential evolution and random
search over the unchanged topology + coordination services.  The
interesting questions: does a mixed network still behave (knowledge
flows across solver types), and does diversity help on deceptive
functions where pure PSO gets stuck?
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_report
from repro.analysis.tables import format_paper_table, format_value
from repro.core.metrics import global_best, total_evaluations
from repro.core.node import OptimizationNodeSpec, build_optimization_node
from repro.core.solvers import mixed_solver_factory
from repro.functions.base import get_function
from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.topology.newscast import bootstrap_views
from repro.utils.config import CoordinationConfig, NewscastConfig, PSOConfig
from repro.utils.rng import SeedSequenceTree

N = 24
BUDGET = 1500  # per node

MIXES = {
    "pure-pso": ["pso"],
    "pure-de": ["de"],
    "pure-random": ["random"],
    "pso+de": ["pso", "de"],
    "pso+de+random": ["pso", "de", "random"],
}


def run_mix(name: str, assignments: list[str], function_name: str, seed: int):
    tree = SeedSequenceTree(seed)
    function = get_function(function_name)
    factory = mixed_solver_factory(
        function,
        assignments,
        swarm_particles=8,
        rng_for=lambda nid, sname: tree.rng("solver", nid, sname),
    )
    spec = OptimizationNodeSpec(
        function=function,
        pso=PSOConfig(particles=8),
        newscast=NewscastConfig(view_size=12),
        coordination=CoordinationConfig(),
        rng_tree=tree,
        evals_per_cycle=8,
        budget_per_node=BUDGET,
        optimizer_factory=factory,
    )
    net = Network(rng=tree.rng("network"))
    net.populate(N, factory=lambda node: build_optimization_node(node, spec))
    bootstrap_views(net, tree.rng("bootstrap"))
    engine = CycleDrivenEngine(net, rng=tree.rng("engine"))
    engine.run(BUDGET // 8 + 1)
    assert total_evaluations(net) == N * BUDGET
    return global_best(net)


def run_ablation():
    out = {}
    for function_name in ("sphere", "schwefel"):
        per_mix = {}
        for name, assignments in MIXES.items():
            bests = [
                run_mix(name, assignments, function_name, seed)
                for seed in (505, 506, 507)
            ]
            per_mix[name] = bests
        out[function_name] = per_mix
    return out


def test_ablation_multisolver(benchmark, report_dir):
    data = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = []
    for function_name, per_mix in data.items():
        for name, bests in per_mix.items():
            rows.append(
                {
                    "function": f"{function_name}/{name}",
                    "avg": format_value(float(np.mean(bests))),
                    "min": format_value(float(np.min(bests))),
                }
            )
    report = format_paper_table(
        rows,
        columns=("function", "avg", "min"),
        title="Ablation A5 — solver diversification across peers",
    )
    save_report(report_dir, "ablation_multisolver", report)

    # Sanity shape: anything with intelligence beats pure random.
    for function_name, per_mix in data.items():
        rand = float(np.median(per_mix["pure-random"]))
        assert float(np.median(per_mix["pure-pso"])) < rand
        assert float(np.median(per_mix["pso+de"])) < rand

    # Knowledge flow keeps mixed networks competitive: the three-way
    # mix lands within two orders of the better pure solver on sphere
    # despite a third of its budget going to random sampling.
    sphere = data["sphere"]
    best_pure = min(
        float(np.median(sphere["pure-pso"])), float(np.median(sphere["pure-de"]))
    )
    mixed = float(np.median(sphere["pso+de+random"]))
    assert np.log10(max(mixed, 1e-300)) < np.log10(max(best_pure, 1e-300)) + 25.0
