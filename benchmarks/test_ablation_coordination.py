"""Ablation A1: anti-entropy mode (push–pull vs push vs pull).

The paper chose Demers' push–pull anti-entropy.  This ablation holds
everything else fixed and swaps the exchange mode, measuring final
quality and how fully the optimum diffused (per-node best spread).
Expected: push–pull diffuses at least as tightly as either half, at
identical message-per-cycle budgets.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_report
from repro.analysis.tables import format_paper_table, format_value
from repro.core.runner import run_experiment
from repro.utils.config import CoordinationConfig, ExperimentConfig
from repro.utils.numerics import safe_log10

MODES = ("push", "pull", "push-pull")


def run_ablation():
    results = {}
    for mode in MODES:
        cfg = ExperimentConfig(
            function="sphere",
            nodes=32,
            particles_per_node=8,
            total_evaluations=32 * 1000,
            gossip_cycle=8,
            repetitions=3,
            seed=101,
            coordination=CoordinationConfig(mode=mode),
        )
        results[mode] = run_experiment(cfg)
    return results


def test_ablation_coordination_mode(benchmark, report_dir):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = []
    for mode, res in results.items():
        spread = float(np.mean([r.node_best_spread for r in res.runs]))
        msgs = float(np.mean([r.messages.coordination_messages for r in res.runs]))
        rows.append(
            {
                "function": mode,
                "avg": format_value(res.quality_stats.mean),
                "min": format_value(res.quality_stats.minimum),
                "max": format_value(res.quality_stats.maximum),
                "var": format_value(spread),  # column reused for spread
            }
        )
        rows[-1]["messages"] = format_value(msgs)
    report = format_paper_table(
        rows,
        columns=("function", "avg", "min", "max", "var", "messages"),
        title="Ablation A1 — coordination mode (var column = mean node-best spread)",
    )
    save_report(report_dir, "ablation_coordination", report)

    # Push-pull must diffuse at least as tightly as push-only.
    spread = {
        mode: float(np.mean([r.node_best_spread for r in res.runs]))
        for mode, res in results.items()
    }
    assert spread["push-pull"] <= spread["push"] + 1e-12

    # All modes land within a sane band of each other on final quality
    # (they share the same solver; only diffusion speed differs).
    logq = {
        mode: float(np.mean(safe_log10(np.maximum(res.qualities(), 0.0))))
        for mode, res in results.items()
    }
    assert max(logq.values()) - min(logq.values()) < 20.0
