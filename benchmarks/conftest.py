"""Shared helpers for the benchmark harness.

Every ``test_expN_*`` benchmark regenerates one paper artefact at
``smoke`` scale (seconds, shape-preserving), times it once via
pytest-benchmark's pedantic mode, **asserts the paper's qualitative
shape** on the data, and writes the full paper-style report (tables +
ASCII figures) to ``benchmarks/reports/<name>.txt``.

Full paper scale is available outside pytest::

    python -m repro.experiments exp1 --scale full
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    """Directory collecting the per-benchmark report files."""
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


def save_report(report_dir: Path, name: str, text: str) -> None:
    """Persist (and echo) one benchmark's paper-style report."""
    path = report_dir / f"{name}.txt"
    path.write_text(text)
    print(f"\n[report saved to {path}]\n{text}")
