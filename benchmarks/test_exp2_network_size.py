"""Benchmark: regenerate Table 2 / Figure 2 (quality vs network size,
fixed total budget)."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_report
from repro.experiments import exp2_network_size
from repro.utils.numerics import safe_log10


def _mean_logq(data, function, nodes, particles):
    for cfg, res in data.entries:
        if (
            cfg.function == function
            and cfg.nodes == nodes
            and cfg.particles_per_node == particles
        ):
            return float(np.mean(safe_log10(np.maximum(res.qualities(), 0.0))))
    return None


def test_exp2_network_size(benchmark, report_dir):
    data = benchmark.pedantic(
        lambda: exp2_network_size.run(scale="smoke", seed=42),
        rounds=1,
        iterations=1,
    )
    save_report(report_dir, "exp2_network_size", exp2_network_size.report(data))

    # Shape 1 (the headline, paper conclusion iv): equal total
    # particles n·k ⇒ comparable quality regardless of the partition.
    # Compare (n=4, k=16), (n=16, k=4), (n=64, k=1): all 64 particles.
    partitions = [(4, 16), (16, 4), (64, 1)]
    logqs = [
        _mean_logq(data, "sphere", n, k)
        for n, k in partitions
        if _mean_logq(data, "sphere", n, k) is not None
    ]
    assert len(logqs) >= 2
    # Total-quality scale spans hundreds of orders; equal-n·k points
    # must cluster within a small fraction of it.
    assert max(logqs) - min(logqs) < 15.0

    # Shape 2: spreading the fixed budget over *vastly* more particles
    # than the sweet spot hurts (too few updates each): the largest
    # n·k point is worse than the best mid-range point.
    sphere_points = {
        (cfg.nodes, cfg.particles_per_node): float(
            np.mean(safe_log10(np.maximum(res.qualities(), 0.0)))
        )
        for cfg, res in data.entries
        if cfg.function == "sphere"
    }
    max_total = max(n * k for n, k in sphere_points)
    worst_big = sphere_points[
        max((n, k) for n, k in sphere_points if n * k == max_total)
    ]
    best_overall = min(sphere_points.values())
    assert best_overall < worst_big
