"""Benchmark: regenerate Table 1 / Figure 1 (quality vs swarm size).

Runs experiment 1 at smoke scale, checks the paper's shape claims on
the measured data, and emits the paper-style report.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_report
from repro.experiments import exp1_swarm_size
from repro.utils.numerics import safe_log10


def _mean_logq(data, function, nodes, particles):
    for cfg, res in data.entries:
        if (
            cfg.function == function
            and cfg.nodes == nodes
            and cfg.particles_per_node == particles
        ):
            return float(np.mean(safe_log10(np.maximum(res.qualities(), 0.0))))
    raise AssertionError(f"missing point {function} n={nodes} k={particles}")


def test_exp1_swarm_size(benchmark, report_dir):
    data = benchmark.pedantic(
        lambda: exp1_swarm_size.run(scale="smoke", seed=42),
        rounds=1,
        iterations=1,
    )
    save_report(report_dir, "exp1_swarm_size", exp1_swarm_size.report(data))

    p = exp1_swarm_size.SCALES["smoke"]
    n_lo, n_hi = min(p["nodes"]), max(p["nodes"])

    # Shape 1 (Fig. 1): at fixed per-node budget, more nodes improve
    # quality on the solvable function.
    assert _mean_logq(data, "sphere", n_hi, 8) < _mean_logq(data, "sphere", n_lo, 8)

    # Shape 2: oversized swarms under-iterate within the budget —
    # k=32 never beats k=8 at the largest network.
    assert _mean_logq(data, "sphere", n_hi, 8) <= _mean_logq(data, "sphere", n_hi, 32)

    # Shape 3: the hard function stays hard everywhere (no config gets
    # Griewank below 1e-4 at this budget) — difficulty ordering holds.
    griewank_best = min(
        res.quality_stats.minimum
        for cfg, res in data.entries
        if cfg.function == "griewank"
    )
    sphere_best = min(
        res.quality_stats.minimum
        for cfg, res in data.entries
        if cfg.function == "sphere"
    )
    assert sphere_best < griewank_best
