"""Cross-engine equivalence and serialization of the Problem layer.

The acceptance contract of the time-aware Problem layer:

* a *dynamic* scenario sees the same landscape schedule on the fast
  and the reference engine (equal shift counts) and degrades
  comparably (bounded offline-error ratio);
* a *hostile* scenario is poisoned identically without the defense
  (believed best == the injected ``-magnitude``, true error > 0) and
  recovers with it (filtered messages, finite believed best);
* the new per-run ``dynamics``/``adversary`` metric dicts survive the
  strict-JSON round trip, non-finite floats included.
"""

from __future__ import annotations

import json
import math
from dataclasses import replace

import pytest

from repro.functions.problem import DynamicsSpec
from repro.scenario import Result, RunRecord, Scenario, Session
from repro.simulator.adversary import AdversarySpec


def _scenario(engine: str, **overrides) -> Scenario:
    base = dict(
        function="sphere",
        nodes=8,
        particles_per_node=4,
        total_evaluations=8 * 320,
        gossip_cycle=16,
        repetitions=1,
        seed=1234,
        engine=engine,
    )
    base.update(overrides)
    return Scenario(**base)


DYNAMIC = dict(dynamics=DynamicsSpec(kind="shift", severity=0.2, period=4.0))
HOSTILE = dict(adversary=AdversarySpec(fraction=0.25))
DEFENDED = dict(adversary=AdversarySpec(fraction=0.25, defense=True))


class TestDynamicEquivalence:
    def test_fast_and_reference_see_the_same_schedule(self):
        records = {
            engine: Session(_scenario(engine, **DYNAMIC)).run_one(0)
            for engine in ("fast", "reference")
        }
        for engine, rec in records.items():
            assert rec.dynamics is not None, engine
            assert rec.dynamics["shifts"] >= 2, engine
            assert rec.dynamics["offline_error"] > 0, engine
            assert rec.dynamics["reevaluations"] > 0, engine
        assert (records["fast"].dynamics["shifts"]
                == records["reference"].dynamics["shifts"])
        # Statistical, not bitwise: both engines must degrade on the
        # same order of magnitude under the same schedule.
        ratio = (records["fast"].dynamics["offline_error"]
                 / records["reference"].dynamics["offline_error"])
        assert 0.02 < ratio < 50.0

    def test_static_run_reports_no_dynamics(self):
        rec = Session(_scenario("fast")).run_one(0)
        assert rec.dynamics is None
        assert rec.adversary is None


class TestHostileEquivalence:
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_undefended_overlay_is_poisoned(self, engine):
        spec = HOSTILE["adversary"]
        rec = Session(_scenario(engine, **HOSTILE)).run_one(0)
        assert rec.adversary is not None
        assert rec.adversary["false_offers"] > 0
        assert rec.adversary["defense"] is False
        # Every honest node ends up believing the injected lure ...
        assert rec.best_value == -spec.magnitude
        # ... while the swarm's true progress is strictly worse.
        assert rec.adversary["final_true_error"] > 0

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_plausibility_filter_holds_the_line(self, engine):
        spec = DEFENDED["adversary"]
        rec = Session(_scenario(engine, **DEFENDED)).run_one(0)
        assert rec.adversary is not None
        assert rec.adversary["defense"] is True
        assert rec.adversary["filtered"] > 0
        assert math.isfinite(rec.best_value)
        assert rec.best_value > -spec.magnitude


class TestSerialization:
    def test_scenario_json_round_trip(self):
        scenario = _scenario("fast", **DYNAMIC, **DEFENDED)
        clone = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
        assert clone == scenario
        assert clone.dynamics.enabled
        assert clone.adversary.defense

    def test_result_round_trip_keeps_metrics(self):
        scenario = _scenario("fast", **DYNAMIC, **DEFENDED)
        result = Session(scenario).run()
        clone = Result.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone.records[0].dynamics == result.records[0].dynamics
        assert clone.records[0].adversary == result.records[0].adversary

    def test_non_finite_metric_floats_survive(self):
        rec = Session(_scenario("fast", **DYNAMIC)).run_one(0)
        rigged = replace(
            rec,
            dynamics={**rec.dynamics, "recovery_time": float("inf")},
            adversary={"byzantine_nodes": 0, "behavior": "false-best",
                       "defense": False, "false_offers": 0, "corrupted": 0,
                       "dropped": 0, "filtered": 0, "verifications": 0,
                       "final_true_error": float("inf")},
        )
        clone = RunRecord.from_dict(json.loads(json.dumps(rigged.to_dict())))
        assert clone.dynamics["recovery_time"] == float("inf")
        assert clone.adversary["final_true_error"] == float("inf")
        assert clone.dynamics == rigged.dynamics
        assert clone.adversary == rigged.adversary
