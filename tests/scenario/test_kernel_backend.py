"""Scenario/Session wiring of the pluggable kernel backend."""

from __future__ import annotations

import warnings

import pytest

from repro.core import kernels
from repro.scenario import KERNEL_BACKENDS, Scenario, ScenarioValidationError, Session


def make(**overrides) -> Scenario:
    base = dict(
        function="sphere", nodes=8, particles_per_node=4,
        total_evaluations=640, gossip_cycle=4, repetitions=2, seed=7,
        engine="fast",
    )
    base.update(overrides)
    return Scenario(**base)


class TestScenarioField:
    def test_default_is_numpy(self):
        assert make().kernel_backend == "numpy"
        assert "numpy" in KERNEL_BACKENDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(ScenarioValidationError, match="kernel_backend"):
            make(kernel_backend="tpu")

    def test_non_numpy_requires_fast_engine(self):
        with pytest.raises(ScenarioValidationError,
                           match="fast engine"):
            make(kernel_backend="numba", engine="reference")

    def test_round_trip_preserves_backend(self):
        s = make(kernel_backend="numba")
        assert Scenario.from_dict(s.to_dict()) == s

    def test_old_json_without_field_loads(self):
        """Scenario dicts serialized before PR 8 carry no
        kernel_backend key and must keep loading with the default."""
        d = make().to_dict()
        del d["kernel_backend"]
        s = Scenario.from_dict(d)
        assert s.kernel_backend == "numpy"


class TestSessionDispatch:
    def test_numpy_backend_explicit_equals_default(self):
        base = Session(make()).run()
        explicit = Session(make(kernel_backend="numpy")).run()
        assert [r.best_value for r in explicit.records] == [
            r.best_value for r in base.records
        ]

    def test_unavailable_backend_falls_back_with_one_warning(self):
        """Without numba installed the session still runs — identical
        results, one RuntimeWarning.  (With numba installed the run
        exercises the real backend and the contract suite guarantees
        identical results, so the equality check holds either way.)"""
        kernels._WARNED.discard("numba")
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = Session(make(kernel_backend="numba")).run()
            base = Session(make()).run()
            assert [r.best_value for r in result.records] == [
                r.best_value for r in base.records
            ]
            fallbacks = [w for w in caught
                         if issubclass(w.category, RuntimeWarning)
                         and "kernel backend" in str(w.message)]
            if "numba" not in kernels.available_backends():
                assert len(fallbacks) == 1
            else:
                assert not fallbacks
        finally:
            kernels._WARNED.discard("numba")
