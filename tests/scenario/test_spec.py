"""Scenario validation and JSON round-trip contract."""

from __future__ import annotations

import json

import pytest

from repro.scenario import (
    Scenario,
    ScenarioValidationError,
    TransportSpec,
)
from repro.utils.config import ChurnConfig, PSOConfig
from repro.utils.exceptions import ConfigurationError


def make(**overrides) -> Scenario:
    base = dict(
        function="sphere", nodes=8, particles_per_node=4,
        total_evaluations=800, gossip_cycle=4, repetitions=2, seed=7,
    )
    base.update(overrides)
    return Scenario(**base)


class TestValidation:
    def test_defaults_validate(self):
        s = Scenario(function="sphere")
        assert s.engine == "reference"
        assert s.evaluations_per_node == 1000

    @pytest.mark.parametrize(
        "field,overrides",
        [
            ("function", {"function": None}),
            ("function", {"function": "sphere",
                          "objective_map": {i: "sphere" for i in range(8)}}),
            ("nodes", {"nodes": 0}),
            ("particles_per_node", {"particles_per_node": 0}),
            ("total_evaluations", {"total_evaluations": 0}),
            ("gossip_cycle", {"gossip_cycle": 0}),
            ("repetitions", {"repetitions": 0}),
            ("seed", {"seed": -1}),
            ("engine", {"engine": "warp"}),
            ("topology", {"topology": "torus"}),
            ("topology", {"topology": "star", "engine": "event",
                          "horizon": 50.0}),
            ("topology", {"topology": "oracle"}),
            ("rng_mode", {"rng_mode": "philox"}),
            ("rng_mode", {"rng_mode": "batched"}),
            ("solver", {"solver": "annealing"}),
            ("solver", {"solver": ()}),
            ("solver", {"solver": "de", "engine": "fast"}),
            ("partitioned", {"partitioned": True, "engine": "fast"}),
            ("baseline", {"baseline": "quantum"}),
            ("baseline", {"baseline": "centralized", "engine": "fast"}),
            ("baseline", {"baseline": "independent",
                          "churn": ChurnConfig(crash_rate=0.1)}),
            ("swarm_size", {"swarm_size": 9}),
            ("swarm_size", {"baseline": "centralized", "swarm_size": 0}),
            ("quality_threshold", {"quality_threshold": 0.0}),
            ("quality_threshold", {"baseline": "centralized",
                                   "quality_threshold": 1e-6}),
            ("horizon", {"horizon": 100.0}),
            ("horizon", {"engine": "event"}),
            ("horizon", {"engine": "event", "horizon": 0.0}),
            ("horizon", {"engine": "event", "horizon": -5.0}),
            ("horizon", {"engine": "fast", "horizon": 100.0}),
            ("event_backend", {"event_backend": "warp"}),
            ("event_backend", {"event_backend": "fast"}),
            ("event_backend", {"event_backend": "fast", "engine": "fast"}),
            ("event_window", {"event_window": 0.5}),
            ("event_window", {"event_window": 0.5, "engine": "event",
                              "horizon": 10.0}),
            ("event_window", {"event_window": 0.0, "engine": "event",
                              "event_backend": "fast", "horizon": 10.0}),
            ("event_window", {"event_window": -1.0, "engine": "event",
                              "event_backend": "fast", "horizon": 10.0}),
            ("event_window", {"event_window": float("inf"), "engine": "event",
                              "event_backend": "fast", "horizon": 10.0}),
            ("event_window", {"event_window": float("nan"), "engine": "event",
                              "event_backend": "fast", "horizon": 10.0}),
            ("rng_mode", {"rng_mode": "batched", "engine": "event",
                          "horizon": 10.0}),
            ("transport.latency_max",
             {"engine": "event", "event_backend": "fast", "horizon": 10.0,
              "transport": TransportSpec(latency_min=2.0, latency_max=8.0)}),
            ("max_cycles", {"max_cycles": 0}),
            ("max_cycles", {"max_cycles": 5, "engine": "event",
                            "horizon": 10.0}),
        ],
    )
    def test_errors_name_offending_field(self, field, overrides):
        with pytest.raises(ScenarioValidationError) as err:
            make(**overrides)
        assert err.value.field.startswith(field)
        assert str(err.value).startswith(f"Scenario.{field}")

    def test_validation_error_is_configuration_and_value_error(self):
        with pytest.raises(ConfigurationError):
            make(engine="warp")
        with pytest.raises(ValueError):
            make(engine="warp")

    def test_objective_map_must_cover_all_nodes(self):
        with pytest.raises(ScenarioValidationError) as err:
            make(function=None, objective_map={0: "sphere"})
        assert err.value.field == "objective_map"

    def test_objective_map_unknown_function(self):
        bad = {i: "sphere" for i in range(8)}
        bad[3] = "not_a_function"
        with pytest.raises(ScenarioValidationError) as err:
            make(function=None, objective_map=bad)
        assert err.value.field == "objective_map"

    def test_objective_map_dimension_mismatch(self):
        # f2 is 2-D, sphere is 10-D.
        bad = {i: ("sphere" if i else "f2") for i in range(8)}
        with pytest.raises(ScenarioValidationError) as err:
            make(function=None, objective_map=bad)
        assert err.value.field == "objective_map"

    def test_transport_validation_names_field(self):
        with pytest.raises(ScenarioValidationError) as err:
            TransportSpec(loss_rate=1.5)
        assert "transport.loss_rate" in str(err.value)

    def test_nested_bundles_normalized(self):
        s = make(particles_per_node=6, gossip_cycle=3,
                 pso=PSOConfig(particles=99))
        assert s.pso.particles == 6
        assert s.coordination.cycle_length == 3

    def test_solver_list_normalized_to_tuple(self):
        s = make(solver=["pso", "de"])
        assert s.solver == ("pso", "de")

    def test_solver_singleton_pso_tuple_is_homogeneous(self):
        # ("pso",) means plain PSO — valid on any engine.
        s = make(solver=("pso",), engine="fast")
        assert s.engine == "fast"

    def test_batched_draws_valid_on_fast_event_backend(self):
        s = make(engine="event", horizon=10.0, event_backend="fast",
                 rng_mode="batched")
        assert s.rng_mode == "batched"


class TestDerivedViews:
    def test_function_for_and_groups(self):
        m = {i: ("sphere" if i % 2 == 0 else "rastrigin") for i in range(8)}
        s = make(function=None, objective_map=m)
        assert s.function_for(0) == "sphere"
        assert s.function_for(1) == "rastrigin"
        assert s.function_for(9) == "rastrigin"  # joiner: 9 % 8 = 1
        groups = dict(s.function_groups())
        assert groups["sphere"] == [0, 2, 4, 6]
        assert groups["rastrigin"] == [1, 3, 5, 7]
        assert s.primary_function() == "sphere"

    def test_homogeneous_groups(self):
        s = make()
        assert s.function_groups() == [("sphere", list(range(8)))]

    def test_to_experiment_config_round(self):
        s = make(quality_threshold=1e-6)
        cfg = s.to_experiment_config()
        assert cfg.function == "sphere"
        assert cfg.nodes == 8
        assert cfg.quality_threshold == 1e-6
        assert Scenario.from_experiment_config(cfg) == s

    def test_with_returns_new_validated_value(self):
        s = make()
        fast = s.with_(engine="fast")
        assert fast.engine == "fast"
        assert s.engine == "reference"
        with pytest.raises(ScenarioValidationError):
            s.with_(engine="warp")

    def test_describe_mentions_engine(self):
        assert "engine=fast" in make(engine="fast").describe()


class TestRoundTrip:
    def test_round_trip_identity(self):
        s = make(engine="fast", quality_threshold=1e-8,
                 churn=ChurnConfig(crash_rate=0.01, join_rate=0.01))
        assert Scenario.from_dict(s.to_dict()) == s

    def test_round_trip_through_json_text(self):
        s = make(
            function=None,
            objective_map={i: ("sphere" if i < 4 else "levy") for i in range(8)},
            solver="pso",
        )
        blob = json.dumps(s.to_dict())
        assert Scenario.from_dict(json.loads(blob)) == s

    def test_round_trip_event_engine(self):
        s = make(engine="event", horizon=500.0,
                 transport=TransportSpec(loss_rate=0.2, gossip_period=2.0))
        assert Scenario.from_dict(s.to_dict()) == s

    def test_round_trip_event_fast_backend(self):
        s = make(engine="event", horizon=500.0, event_backend="fast",
                 event_window=0.25)
        assert Scenario.from_dict(s.to_dict()) == s

    def test_pre_event_backend_dicts_still_load(self):
        # Serialized by code that predates the cohort backend.
        data = make(engine="event", horizon=500.0).to_dict()
        del data["event_backend"]
        del data["event_window"]
        s = Scenario.from_dict(data)
        assert s.event_backend == "reference"
        assert s.event_window is None

    def test_objective_map_keys_stringified_in_dict(self):
        s = make(function=None,
                 objective_map={i: "sphere" for i in range(8)})
        d = s.to_dict()
        assert set(d["objective_map"]) == {str(i) for i in range(8)}

    def test_unknown_key_named(self):
        with pytest.raises(ScenarioValidationError) as err:
            Scenario.from_dict({"function": "sphere", "gossip_cycel": 8})
        assert err.value.field == "gossip_cycel"

    def test_unknown_nested_key_named(self):
        data = make().to_dict()
        data["churn"]["crashrate"] = 0.5
        with pytest.raises(ScenarioValidationError) as err:
            Scenario.from_dict(data)
        assert "churn.crashrate" in str(err.value)

    def test_invalid_nested_value_named(self):
        data = make().to_dict()
        data["churn"]["crash_rate"] = 2.0
        with pytest.raises(ScenarioValidationError) as err:
            Scenario.from_dict(data)
        assert err.value.field == "churn"

    def test_callable_topology_not_serializable(self):
        s = make(topology=lambda nid: None)
        with pytest.raises(ScenarioValidationError) as err:
            s.to_dict()
        assert err.value.field == "topology"

    def test_observers_not_serializable(self):
        s = make(observers=(object(),))
        with pytest.raises(ScenarioValidationError) as err:
            s.to_dict()
        assert err.value.field == "observers"

    def test_solver_tuple_round_trips(self):
        s = make(solver=("pso", "de", "random"))
        d = s.to_dict()
        assert d["solver"] == ["pso", "de", "random"]
        assert Scenario.from_dict(d).solver == ("pso", "de", "random")
