"""JSON round-trip of the unified result shapes (distributed transport)."""

from __future__ import annotations

import json
import math

import pytest

from repro.core.metrics import MessageTally, QualitySample
from repro.scenario import Result, RunRecord, Scenario, Session


def make(**overrides) -> Scenario:
    base = dict(
        function="sphere", nodes=4, particles_per_node=4,
        total_evaluations=400, gossip_cycle=4, repetitions=2, seed=17,
    )
    base.update(overrides)
    return Scenario(**base)


def roundtrip(record: RunRecord) -> RunRecord:
    """Through *strict* JSON text, exactly as the spool ships it."""
    text = json.dumps(record.to_dict(), allow_nan=False)
    return RunRecord.from_dict(json.loads(text))


class TestRunRecordRoundTrip:
    def test_cycle_engine_record_equal(self):
        record = Session(make()).run_one(0)
        assert roundtrip(record) == record

    def test_history_samples_survive(self):
        record = Session(make(record_history=True)).run_one(0)
        restored = roundtrip(record)
        assert restored == record
        assert all(isinstance(s, QualitySample) for s in restored.history)

    def test_event_engine_record_equal(self):
        record = Session(
            make(engine="event", horizon=300.0, record_history=True)
        ).run_one(0)
        restored = roundtrip(record)
        # The event engine's record holds a NaN spread and tuple
        # history samples; NaN != NaN, so compare field-wise.
        assert math.isnan(restored.node_best_spread)
        assert restored.best_value == record.best_value
        assert restored.sim_time == record.sim_time
        assert restored.messages == record.messages
        assert restored.history == record.history
        assert all(isinstance(s, tuple) for s in restored.history)

    def test_non_finite_floats_travel_as_strict_json(self):
        record = RunRecord(
            best_value=float("inf"), quality=float("inf"),
            total_evaluations=0, cycles=0, stop_reason="budget",
            threshold_local_time=None, threshold_total_evaluations=None,
            messages=MessageTally(), node_best_spread=float("nan"),
            node_qualities=[1.0, float("inf")],
            history=[
                QualitySample(cycle=0, evaluations=0,
                              best_value=float("inf")),
                (0.0, 0, float("inf")),
            ],
        )
        text = json.dumps(record.to_dict(), allow_nan=False)  # must not raise
        restored = RunRecord.from_dict(json.loads(text))
        assert restored.best_value == float("inf")
        assert math.isnan(restored.node_best_spread)
        assert restored.node_qualities == [1.0, float("inf")]
        assert restored.history[0].best_value == float("inf")
        assert restored.history[1] == (0.0, 0.0, float("inf"))

    def test_baseline_record_with_node_qualities(self):
        record = Session(
            make(baseline="independent", repetitions=1)
        ).run_one(0)
        assert record.node_qualities is not None
        assert roundtrip(record) == record

    def test_missing_field_fails_loudly(self):
        payload = Session(make()).run_one(0).to_dict()
        del payload["best_value"]
        with pytest.raises(ValueError, match="best_value"):
            RunRecord.from_dict(payload)


class TestResultRoundTrip:
    def test_result_round_trip_equal(self):
        result = Session(make()).run()
        text = json.dumps(result.to_dict(), allow_nan=False)
        restored = Result.from_dict(json.loads(text))
        assert restored.scenario == result.scenario
        assert restored.records == result.records
        assert restored.elapsed_seconds == result.elapsed_seconds
        assert restored.quality_stats.mean == result.quality_stats.mean
