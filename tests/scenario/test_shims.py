"""Deprecation shims: old entry points warn and match the facade."""

from __future__ import annotations

import warnings

import pytest

from repro.core.runner import run_experiment, run_single
from repro.deployment import AsyncDeployment, AsyncRuntime, DeploymentConfig
from repro.scenario import Scenario, Session
from repro.utils.config import ExperimentConfig


def make_config(**overrides) -> ExperimentConfig:
    base = dict(
        function="sphere", nodes=6, particles_per_node=4,
        total_evaluations=6 * 4 * 10, gossip_cycle=4, repetitions=2, seed=31,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestRunSingleShim:
    def test_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="run_single is deprecated"):
            run_single(make_config())

    def test_matches_facade_reference(self):
        with pytest.warns(DeprecationWarning):
            legacy = run_single(make_config(), record_history=True)
        facade = Session(
            Scenario.from_experiment_config(make_config(), record_history=True)
        ).run_one(0)
        assert legacy.best_value == facade.best_value
        assert legacy.total_evaluations == facade.total_evaluations
        assert legacy.history == facade.history

    def test_matches_facade_fast(self):
        with pytest.warns(DeprecationWarning):
            legacy = run_single(make_config(), engine="fast")
        facade = Session(
            Scenario.from_experiment_config(make_config(), engine="fast")
        ).run_one(0)
        assert legacy.best_value == facade.best_value

    def test_legacy_error_contract(self):
        with pytest.raises(ValueError):
            run_single(make_config(), engine="warp")
        with pytest.raises(ValueError):
            run_single(make_config(), engine="fast",
                       topology_factory=lambda nid: None)


class TestRunExperimentShim:
    def test_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="run_experiment is deprecated"):
            run_experiment(make_config())

    def test_matches_facade(self):
        with pytest.warns(DeprecationWarning):
            legacy = run_experiment(make_config())
        facade = Session(Scenario.from_experiment_config(make_config())).run()
        assert [r.best_value for r in legacy.runs] == [
            r.best_value for r in facade.records
        ]
        assert legacy.quality_stats.mean == facade.quality_stats.mean

    def test_legacy_result_type_preserved(self):
        from repro.core.runner import ExperimentResult

        with pytest.warns(DeprecationWarning):
            legacy = run_experiment(make_config())
        assert isinstance(legacy, ExperimentResult)
        assert legacy.config == make_config()


class TestDeploymentShim:
    def make_deployment_config(self) -> DeploymentConfig:
        from repro.utils.config import CoordinationConfig

        # coordination.cycle_length mirrors the scenario layer's
        # normalization (gossip_cycle == evals_per_tick == 4).
        return DeploymentConfig(
            function="sphere", nodes=4, particles_per_node=4,
            budget_per_node=40, evals_per_tick=4, seed=5,
            coordination=CoordinationConfig(cycle_length=4),
        )

    def test_async_deployment_warns(self):
        with pytest.warns(DeprecationWarning, match="AsyncDeployment is deprecated"):
            AsyncDeployment(self.make_deployment_config())

    def test_async_runtime_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            AsyncRuntime(self.make_deployment_config())

    def test_matches_facade(self):
        with pytest.warns(DeprecationWarning):
            legacy = AsyncDeployment(self.make_deployment_config()).run(until=2000.0)
        scenario = Scenario(
            function="sphere", nodes=4, particles_per_node=4,
            total_evaluations=160, gossip_cycle=4, seed=5,
            engine="event", horizon=2000.0,
        )
        facade = Session(scenario).run_one(0)
        assert legacy.best_value == facade.best_value
        assert legacy.total_evaluations == facade.total_evaluations
        assert legacy.stop_reason == facade.stop_reason


class TestBaselineFacade:
    def test_centralized_routes_through_session(self):
        from repro.baselines import run_centralized

        config = make_config()
        legacy = run_centralized(config)
        facade = Session(
            Scenario.from_experiment_config(config, baseline="centralized")
        ).run()
        assert legacy.qualities == facade.qualities()

    def test_legacy_baselines_ignore_quality_threshold(self):
        # Pre-facade behavior: baselines always ran to budget even
        # when the config carried a threshold.
        from repro.baselines import run_centralized, run_independent

        config = make_config(quality_threshold=1e-6, repetitions=1)
        assert run_centralized(config).qualities
        assert run_independent(config).qualities

    def test_independent_routes_through_session(self):
        from repro.baselines import run_independent

        config = make_config()
        legacy = run_independent(config)
        facade = Session(
            Scenario.from_experiment_config(config, baseline="independent")
        ).run()
        assert legacy.qualities == facade.qualities()
        assert legacy.per_node_qualities == [
            r.node_qualities for r in facade.records
        ]
