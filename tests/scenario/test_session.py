"""Session facade: every engine and baseline behind one entry point."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import QualitySample
from repro.scenario import (
    ExecutionPolicy,
    Result,
    RunRecord,
    Scenario,
    Session,
    TransportSpec,
)
from repro.utils.config import ChurnConfig
from repro.utils.exceptions import ConfigurationError


def make(**overrides) -> Scenario:
    base = dict(
        function="sphere", nodes=6, particles_per_node=4,
        total_evaluations=6 * 4 * 10, gossip_cycle=4, repetitions=2, seed=13,
    )
    base.update(overrides)
    return Scenario(**base)


class TestRunReference:
    def test_run_returns_unified_result(self):
        result = Session(make()).run()
        assert isinstance(result, Result)
        assert len(result.records) == 2
        assert all(isinstance(r, RunRecord) for r in result.records)
        assert all(r.stop_reason == "budget" for r in result.records)
        assert result.quality_stats.count == 2
        assert result.elapsed_seconds > 0

    def test_run_one_deterministic_per_repetition(self):
        a = Session(make()).run_one(1)
        b = Session(make()).run_one(1)
        assert a.best_value == b.best_value
        assert a.best_value != Session(make()).run_one(0).best_value

    def test_progress_callback(self):
        seen = []
        Session(make()).run(progress=lambda i, r: seen.append((i, r.quality)))
        assert [i for i, _ in seen] == [0, 1]

    def test_budget_infeasible_raises(self):
        with pytest.raises(ConfigurationError):
            Session(make(nodes=6, total_evaluations=3)).run_one(0)

    def test_observers_forwarded(self):
        class Spy:
            cycles = 0

            def observe(self, engine):
                Spy.cycles += 1

        Session(make(observers=(Spy(),), repetitions=1)).run()
        assert Spy.cycles > 0

    def test_workers_match_sequential(self):
        seq = Session(make()).run(policy=ExecutionPolicy(workers=1))
        par = Session(make()).run(policy=ExecutionPolicy(workers=2))
        assert [r.best_value for r in seq.records] == [
            r.best_value for r in par.records
        ]

    def test_workers_invalid(self):
        with pytest.raises(ValueError):
            Session(make()).run(policy=ExecutionPolicy(workers=0))

    def test_loose_workers_kwarg_removed(self):
        with pytest.raises(TypeError):
            Session(make()).run(workers=2)

    def test_parallel_progress_streams_incrementally(self, monkeypatch):
        """Regression: ``pool.map`` blocked until the *last* repetition,
        then fired every progress callback at once — long parallel runs
        looked hung.  The pool must be consumed lazily (``imap``), so
        each record's callback fires before the next one is pulled.

        The instrumented pool runs repetitions inline and logs the
        interleaving; a blocking ``map`` (or an eagerly materialized
        ``list(imap(...))``) computes every record before the first
        ``progress:`` event and fails the exact-order assertion.
        """
        events: list[str] = []

        class InlinePool:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def imap(self, fn, jobs):
                for i, job in enumerate(jobs):
                    events.append(f"compute:{i}")
                    yield fn(job)

            def map(self, fn, jobs):  # the old, blocking path
                events.append("blocking-map")
                return [fn(job) for job in jobs]

        class InlineCtx:
            def Pool(self, processes):
                return InlinePool()

        import multiprocessing

        monkeypatch.setattr(
            multiprocessing, "get_context", lambda method: InlineCtx()
        )
        Session(make(repetitions=3)).run(
            policy=ExecutionPolicy(workers=2),
            progress=lambda i, r: events.append(f"progress:{i}"),
        )
        assert events == [
            "compute:0", "progress:0",
            "compute:1", "progress:1",
            "compute:2", "progress:2",
        ]

    def test_workers_reject_callable_topology(self):
        scenario = make(topology=lambda nid: None)
        with pytest.raises(ValueError):
            Session(scenario).run(policy=ExecutionPolicy(workers=2))

    def test_session_requires_scenario(self):
        with pytest.raises(TypeError):
            Session({"function": "sphere"})


class TestEngines:
    def test_fast_engine_same_schema(self):
        ref = Session(make()).run()
        fast = Session(make(engine="fast")).run()
        assert [r.total_evaluations for r in ref.records] == [
            r.total_evaluations for r in fast.records
        ]
        assert all(np.isfinite(r.quality) for r in fast.records)

    def test_fast_single_node_bit_identical(self):
        base = make(nodes=1, particles_per_node=8, gossip_cycle=8,
                    total_evaluations=8 * 20, repetitions=1)
        ref = Session(base).run_one(0)
        fast = Session(base.with_(engine="fast")).run_one(0)
        assert ref.best_value == fast.best_value
        assert ref.cycles == fast.cycles

    def test_event_engine_record(self):
        scenario = make(
            engine="event", horizon=4_000.0, repetitions=1,
            transport=TransportSpec(compute_period=1.0, gossip_period=2.0,
                                    newscast_period=2.0),
        )
        record = Session(scenario).run_one(0)
        assert record.sim_time is not None and record.sim_time > 0
        assert record.stop_reason in ("budget", "horizon")
        assert record.total_evaluations > 0

    def test_event_engine_deterministic(self):
        scenario = make(engine="event", horizon=500.0, repetitions=1)
        a = Session(scenario).run_one(0)
        b = Session(scenario).run_one(0)
        assert a.best_value == b.best_value
        assert a.best_value != Session(scenario).run_one(1).best_value

    def test_event_fast_backend_same_schema(self):
        scenario = make(engine="event", horizon=4_000.0, repetitions=1)
        ref = Session(scenario).run_one(0)
        fast = Session(
            scenario.with_(event_backend="fast")
        ).run_one(0)
        # Same unified record shape and the same physical outcome:
        # both spend the whole budget of the same configuration.
        assert fast.sim_time is not None and fast.sim_time > 0
        assert fast.stop_reason == ref.stop_reason == "budget"
        assert fast.total_evaluations == ref.total_evaluations
        assert fast.messages.coordination_messages > 0
        # Both backends sample the monitor on the same cadence.
        assert len(fast.history) > 0 and len(ref.history) > 0

    def test_event_fast_backend_window_override(self):
        scenario = make(engine="event", horizon=300.0, repetitions=1,
                        event_backend="fast", event_window=0.25)
        from repro.core.eventpath import CohortEventEngine

        session = Session(scenario)
        engine = CohortEventEngine(session.deployment_config(), window=0.25)
        assert engine.window == 0.25
        record = session.run_one(0)
        assert record.total_evaluations > 0

    def test_event_fast_backend_deterministic(self):
        scenario = make(engine="event", horizon=500.0, repetitions=1,
                        event_backend="fast")
        a = Session(scenario).run_one(0)
        b = Session(scenario).run_one(0)
        assert a.best_value == b.best_value
        assert a.best_value != Session(scenario).run_one(1).best_value

    def test_churn_reference_and_fast(self):
        scenario = make(
            churn=ChurnConfig(crash_rate=0.2, join_rate=0.5, min_population=2),
            total_evaluations=6 * 4 * 30,
            repetitions=1,
        )
        for engine in ("reference", "fast"):
            record = Session(scenario.with_(engine=engine)).run_one(0)
            assert np.isfinite(record.quality)
            # Churn events surface in the unified record on every engine.
            assert record.crashes + record.joins > 0


class TestWorkloads:
    def test_topology_star_matches_masterslave_baseline(self):
        from repro.baselines.masterslave import run_master_slave

        scenario = make(topology="star")
        facade = Session(scenario).run()
        legacy = run_master_slave(scenario.to_experiment_config())
        assert [r.best_value for r in facade.records] == [
            r.best_value for r in legacy.runs
        ]

    def test_topology_ring_runs(self):
        record = Session(make(topology="ring", repetitions=1)).run_one(0)
        assert np.isfinite(record.quality)

    def test_mixed_solver_network(self):
        record = Session(
            make(solver=("pso", "de", "random"), repetitions=1)
        ).run_one(0)
        assert np.isfinite(record.quality)
        assert record.total_evaluations == 6 * 4 * 10

    def test_partitioned_search(self):
        record = Session(make(partitioned=True, repetitions=1)).run_one(0)
        assert np.isfinite(record.quality)

    def test_centralized_baseline(self):
        result = Session(make(baseline="centralized")).run()
        assert len(result.records) == 2
        assert all(r.total_evaluations == 6 * 4 * 10 for r in result.records)
        assert result.quality_stats.count == 2

    def test_independent_baseline_records_node_qualities(self):
        result = Session(make(baseline="independent")).run()
        for record in result.records:
            assert record.node_qualities is not None
            assert len(record.node_qualities) == 6
            assert record.quality == min(record.node_qualities)


class TestSweepAndTrajectory:
    def test_scenarios_cartesian_order(self):
        session = Session(make())
        specs = list(session.scenarios(nodes=[2, 4], gossip_cycle=[1, 2]))
        assert [(s.nodes, s.gossip_cycle) for s in specs] == [
            (2, 1), (2, 2), (4, 1), (4, 2),
        ]

    def test_scenarios_unknown_axis(self):
        with pytest.raises(ConfigurationError):
            list(Session(make()).scenarios(bogus=[1]))

    def test_sweep_runs_every_point(self):
        results = Session(make(repetitions=1)).sweep(gossip_cycle=[2, 4])
        assert len(results) == 2
        assert [r.scenario.gossip_cycle for r in results] == [2, 4]
        assert all(isinstance(r, Result) for r in results)

    def test_sweep_invalid_point_fails_loudly(self):
        with pytest.raises(ConfigurationError):
            Session(make()).sweep(engine=["fast", "warp"])

    def test_trajectory_cycle_engine(self):
        history = Session(make(repetitions=1)).trajectory(0)
        assert len(history) > 0
        assert all(isinstance(h, QualitySample) for h in history)
        bests = [h.best_value for h in history]
        assert bests == sorted(bests, reverse=True) or all(
            b <= a + 1e-12 for a, b in zip(bests, bests[1:])
        )

    def test_trajectory_event_engine(self):
        history = Session(
            make(engine="event", horizon=200.0, repetitions=1)
        ).trajectory(0)
        assert len(history) > 0
        assert all(len(sample) == 3 for sample in history)

    def test_trajectory_does_not_mutate_scenario(self):
        scenario = make(repetitions=1)
        Session(scenario).trajectory(0)
        assert scenario.record_history is False


class TestEscapeHatch:
    def test_build_network_populated(self):
        network, spec, tree = Session(make()).build_network()
        assert network.live_count == 6
        assert spec.budget_per_node == 40
        assert tree is not None

    def test_build_network_rejects_fast(self):
        with pytest.raises(ConfigurationError):
            Session(make(engine="fast")).build_network()


class TestResultShape:
    def test_result_legacy_aliases(self):
        result = Session(make()).run()
        assert result.runs is result.records
        assert result.config.function == "sphere"
        assert result.qualities() == [r.quality for r in result.records]
        assert result.best_record.quality == min(result.qualities())

    def test_success_rate_with_threshold(self):
        result = Session(make(quality_threshold=1e30)).run()
        assert result.success_rate == 1.0
        assert result.time_stats is not None

    def test_messages_summed(self):
        result = Session(make()).run()
        per_run = sum(r.messages.coordination_messages for r in result.records)
        assert result.messages.coordination_messages == per_run
