"""ExecutionPolicy: one frozen value for every how-to-run knob."""

from __future__ import annotations

import pytest

from repro.scenario import (
    ExecutionPolicy,
    ExecutionPolicyError,
    Scenario,
    ScenarioValidationError,
    Session,
)
from repro.utils.exceptions import ConfigurationError


def _scenario(**overrides) -> Scenario:
    base = dict(
        function="sphere",
        nodes=16,
        total_evaluations=320,
        max_cycles=10,
        engine="fast",
        repetitions=1,
        seed=7,
    )
    base.update(overrides)
    return Scenario(**base)


class TestValidation:
    def test_defaults_are_sequential(self):
        policy = ExecutionPolicy()
        assert policy.workers == 1
        assert policy.spool is None
        assert policy.shards == 1

    @pytest.mark.parametrize(
        "kwargs,field",
        [
            ({"workers": 0}, "workers"),
            ({"shards": 0}, "shards"),
            ({"stale_after": -1.0}, "stale_after"),
            ({"heartbeat_interval": 0.0}, "heartbeat_interval"),
            ({"job_timeout": -5.0}, "job_timeout"),
        ],
    )
    def test_bad_values_name_the_field(self, kwargs, field):
        with pytest.raises(ExecutionPolicyError, match=f"ExecutionPolicy.{field}"):
            ExecutionPolicy(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecutionPolicy().workers = 2

    def test_round_trip(self):
        policy = ExecutionPolicy(
            workers=3, spool="/tmp/x", shards=2, stale_after=60.0
        )
        assert ExecutionPolicy.from_dict(policy.to_dict()) == policy

    def test_with_returns_modified_copy(self):
        policy = ExecutionPolicy(workers=2)
        assert policy.with_(shards=4) == ExecutionPolicy(workers=2, shards=4)
        assert policy.shards == 1


class TestLooseKwargsRemoved:
    def test_from_kwargs_is_gone(self):
        assert not hasattr(ExecutionPolicy, "from_kwargs")

    def test_run_rejects_non_policy_value(self):
        with pytest.raises(TypeError, match="ExecutionPolicy"):
            Session(_scenario()).run(policy={"workers": 2})

    def test_sweep_rejects_loose_spool_kwarg(self, tmp_path):
        # `spool` is no longer a sweep parameter; it lands in **axes
        # and is rejected as an execution knob, pointing at the policy.
        with pytest.raises(ConfigurationError, match="ExecutionPolicy"):
            Session(_scenario()).sweep(spool=str(tmp_path / "s"), nodes=[8])


class TestSessionSurface:
    def test_sweep_policy_object_spool(self, tmp_path):
        out = Session(_scenario()).sweep(
            policy=ExecutionPolicy(spool=str(tmp_path / "spool")), nodes=[8]
        )
        assert len(out) == 1

    def test_sweep_rejects_shards(self):
        with pytest.raises(ConfigurationError, match="shard"):
            Session(_scenario()).sweep(
                policy=ExecutionPolicy(shards=2), nodes=[8]
            )

    def test_run_with_shards_routes_through_sharded_runtime(self):
        result = Session(_scenario()).run(policy=ExecutionPolicy(shards=2))
        assert result.records[0].stop_reason in ("budget", "cycle cap")

    def test_run_rejects_workers_combined_with_shards(self):
        with pytest.raises(ConfigurationError, match="workers"):
            Session(_scenario()).run(
                policy=ExecutionPolicy(shards=2, workers=2)
            )


def test_scenario_from_dict_points_execution_keys_at_policy():
    spec = _scenario().to_dict()
    spec["workers"] = 4
    with pytest.raises(ScenarioValidationError) as exc_info:
        Scenario.from_dict(spec)
    message = str(exc_info.value)
    assert "workers" in message
    assert "ExecutionPolicy" in message
    assert "execution knob" in message


def test_scenario_from_dict_unknown_key_stays_generic():
    spec = _scenario().to_dict()
    spec["frobnicate"] = 1
    with pytest.raises(ScenarioValidationError, match="unknown scenario field"):
        Scenario.from_dict(spec)


def test_scenario_from_dict_round_trip():
    scenario = _scenario(
        topology="newscast", record_history=True, quality_threshold=0.5
    )
    assert Scenario.from_dict(scenario.to_dict()) == scenario
