"""Heterogeneous objective maps: grouped batching on the fast engine.

The redesign's proof obligation (ROADMAP's "multi-function batching"):
``Scenario.objective_map`` routes grouped nodes through ``FastEngine``
with one batched evaluation per function group, and the result matches
the reference engine — bit-for-bit where gossip cannot reorder
information flow, statistically otherwise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fastpath import FastEngine, run_single_fast
from repro.scenario import Scenario, Session
from repro.topology.sampler import PeerSampler
from repro.utils.config import ChurnConfig

FUNCS = ("sphere", "rastrigin", "levy")


def round_robin_map(n: int) -> dict[int, str]:
    return {i: FUNCS[i % len(FUNCS)] for i in range(n)}


def make(n: int = 6, reps: int = 1, **overrides) -> Scenario:
    base = dict(
        objective_map=round_robin_map(n), nodes=n, particles_per_node=4,
        total_evaluations=n * 4 * 10, gossip_cycle=4, repetitions=reps,
        seed=23,
    )
    base.update(overrides)
    return Scenario(**base)


class IsolatedSampler(PeerSampler):
    """A topology where nobody knows anybody: gossip never fires."""

    def sample_peer(self, node, rng):
        return None

    def known_peers(self, node):
        return []


def isolated_topology(nid):
    return ("topology", IsolatedSampler())


class TestGroupedBatching:
    def test_one_batch_call_per_group_per_chunk(self):
        scenario = make(n=6, gossip_cycle=4)  # r = k: one chunk per cycle
        engine = FastEngine(
            scenario.to_experiment_config(),
            objective_map=scenario.objective_map,
        )
        calls = {name: [] for name in FUNCS}
        for fn in engine._functions:
            original = fn.batch

            def counting(points, _orig=original, _name=fn.NAME):
                calls[_name].append(points.shape[0])
                return _orig(points)

            fn.batch = counting
        engine.run_one_cycle()
        # 6 nodes round-robin over 3 functions -> 2 nodes x 4 particles
        # per group, exactly one batched call each.
        assert calls == {name: [8] for name in FUNCS}

    def test_nodes_optimize_their_own_function(self):
        scenario = make(n=6)
        engine = FastEngine(
            scenario.to_experiment_config(),
            objective_map=scenario.objective_map,
            gossip=False,
        )
        engine.run(10)
        # Each node's pbest values must equal its own function applied
        # to its pbest positions.
        for nid in range(6):
            fn = engine._function_of(nid)
            state = engine.soa.node_state(nid)
            np.testing.assert_allclose(
                fn.batch(state.pbest_positions), state.pbest_values
            )

    def test_join_inherits_objective_of_replaced_slot(self):
        scenario = make(
            n=6, churn=ChurnConfig(join_rate=0.5, min_population=2),
            total_evaluations=6 * 4 * 30,
        )
        engine = FastEngine(
            scenario.to_experiment_config(),
            objective_map=scenario.objective_map,
        )
        engine.run(10)
        assert engine.joins > 0
        for nid in range(6, engine.soa.n):
            assert engine._function_of(nid).NAME == FUNCS[nid % 6 % len(FUNCS)]


class TestEngineEquivalence:
    def test_gossip_off_bit_identical_to_reference(self):
        """With gossip silenced, every node is an isolated swarm on its
        own function — the fast path must reproduce the reference
        engine's trajectory bit-for-bit at r = k."""
        scenario = make(n=6, record_history=True)
        ref = Session(scenario.with_(topology=isolated_topology)).run_one(0)
        fast = run_single_fast(
            scenario.to_experiment_config(),
            record_history=True,
            gossip=False,
            objective_map=scenario.objective_map,
        )
        assert ref.best_value == fast.best_value
        assert ref.total_evaluations == fast.total_evaluations
        assert ref.node_best_spread == fast.node_best_spread
        assert [(h.cycle, h.evaluations, h.best_value) for h in ref.history] == [
            (h.cycle, h.evaluations, h.best_value) for h in fast.history
        ]

    def test_fast_matches_reference_statistically(self):
        """Full scenario (gossip on): final-quality distributions of
        the two engines must land in the same regime."""
        scenario = make(n=9, reps=8, total_evaluations=9 * 4 * 25)
        ref = Session(scenario).run()
        fast = Session(scenario.with_(engine="fast")).run()

        def log_med(result):
            return float(
                np.median(np.log10(np.maximum(result.qualities(), 1e-300)))
            )

        assert abs(log_med(ref) - log_med(fast)) < 2.0

    def test_facade_routes_objective_map_to_fast_engine(self):
        scenario = make(n=6, engine="fast")
        record = Session(scenario).run_one(0)
        assert np.isfinite(record.quality)
        assert record.total_evaluations == 6 * 4 * 10

    def test_missing_node_in_map_raises(self):
        from repro.utils.exceptions import ConfigurationError

        cfg = make(n=6).to_experiment_config()
        with pytest.raises(ConfigurationError):
            FastEngine(cfg, objective_map={0: "sphere"})
