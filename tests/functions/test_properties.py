"""Property-based tests (hypothesis) over the benchmark functions.

These verify mathematical invariants that must hold for *every* point
in the domain, not just hand-picked ones.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.functions import (
    Ackley,
    DeJongF2,
    Griewank,
    Rastrigin,
    Rosenbrock,
    SchafferF6,
    Sphere,
    Zakharov,
)

ALL = [DeJongF2, Zakharov, Rosenbrock, Sphere, SchafferF6, Griewank, Rastrigin, Ackley]


def domain_points(cls, max_rows: int = 8):
    """Strategy: batches of points inside ``cls``'s domain box."""
    f = cls()
    lo, hi = float(f.lower[0]), float(f.upper[0])
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, max_rows), st.just(f.dimension)),
        elements=st.floats(min_value=lo, max_value=hi, allow_nan=False),
    )


@pytest.mark.parametrize("cls", ALL)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_values_finite_and_above_optimum(cls, data):
    """f is finite everywhere in the box and never beats its optimum."""
    f = cls()
    pts = data.draw(domain_points(cls))
    vals = f.batch(pts)
    assert np.all(np.isfinite(vals))
    assert np.all(vals >= f.optimum_value - 1e-9)


@pytest.mark.parametrize("cls", [Sphere, Rastrigin, Ackley, SchafferF6, Griewank])
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_symmetry_under_negation(cls, data):
    """These functions are even: f(x) == f(−x)."""
    f = cls()
    pts = data.draw(domain_points(cls))
    assert np.allclose(f.batch(pts), f.batch(-pts), rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("cls", [Sphere, SchafferF6, Ackley])
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_radial_functions_permutation_invariant(cls, data):
    """Radial/separable-symmetric functions ignore coordinate order."""
    f = cls()
    pts = data.draw(domain_points(cls))
    perm = np.random.default_rng(0).permutation(f.dimension)
    assert np.allclose(f.batch(pts), f.batch(pts[:, perm]), rtol=1e-9, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    x=st.floats(min_value=-100, max_value=100),
    scale=st.floats(min_value=1.1, max_value=5.0),
)
def test_sphere_radial_monotonicity(x, scale):
    """Moving radially outward never decreases Sphere."""
    f = Sphere(3)
    p = np.array([x, x / 2, -x / 3])
    assert f(np.clip(p * scale, -100, 100)) >= f(p) - 1e-9


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_quality_clamps_at_zero(data):
    """quality() never returns negative, even for tiny negatives."""
    f = Sphere(2)
    v = data.draw(st.floats(min_value=-1e-9, max_value=1e9, allow_nan=False))
    assert f.quality(v) >= 0.0


@pytest.mark.parametrize("cls", ALL)
@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_contains_accepts_domain_samples(cls, data):
    """Uniform domain samples always lie inside the box."""
    f = cls()
    seed = data.draw(st.integers(0, 2**16))
    pts = f.sample_uniform(np.random.default_rng(seed), 16)
    assert np.all(f.contains(pts))
