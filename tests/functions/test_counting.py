"""Tests for evaluation counting and budgets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.functions.counting import CountingFunction
from repro.functions.suite import Sphere
from repro.utils.exceptions import BudgetExhaustedError


class TestCounting:
    def test_scalar_counts_one(self):
        f = CountingFunction(Sphere(3))
        f(np.zeros(3))
        assert f.evaluations == 1

    def test_batch_counts_rows(self):
        f = CountingFunction(Sphere(3))
        f.batch(np.zeros((7, 3)))
        assert f.evaluations == 7

    def test_values_pass_through(self, rng):
        inner = Sphere(3)
        f = CountingFunction(inner)
        pts = inner.sample_uniform(rng, 5)
        assert np.array_equal(f.batch(pts), inner.batch(pts))

    def test_metadata_mirrors_inner(self):
        inner = Sphere(4)
        f = CountingFunction(inner)
        assert f.dimension == 4
        assert np.array_equal(f.lower, inner.lower)
        assert f.optimum_value == 0.0
        assert f.quality(3.0) == 3.0
        assert np.array_equal(f.optimum_position, inner.optimum_position)

    def test_reset(self):
        f = CountingFunction(Sphere(2))
        f(np.zeros(2))
        f.reset()
        assert f.evaluations == 0


class TestBudget:
    def test_budget_trips_before_overrun(self):
        f = CountingFunction(Sphere(2), budget=5)
        f.batch(np.zeros((5, 2)))
        with pytest.raises(BudgetExhaustedError):
            f(np.zeros(2))
        assert f.evaluations == 5  # the overrunning call did not evaluate

    def test_partial_batch_rejected_whole(self):
        f = CountingFunction(Sphere(2), budget=3)
        with pytest.raises(BudgetExhaustedError):
            f.batch(np.zeros((4, 2)))
        assert f.evaluations == 0

    def test_remaining(self):
        f = CountingFunction(Sphere(2), budget=10)
        assert f.remaining == 10
        f.batch(np.zeros((4, 2)))
        assert f.remaining == 6

    def test_unlimited_budget(self):
        f = CountingFunction(Sphere(2))
        assert f.remaining is None
        f.batch(np.zeros((100, 2)))
        assert f.evaluations == 100

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            CountingFunction(Sphere(2), budget=-1)
