"""Tests for the paper's six benchmark functions.

Each function is checked against hand-computed values, its known
optimum, and its registry entry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.functions import (
    DeJongF2,
    Griewank,
    PAPER_FUNCTIONS,
    Rosenbrock,
    SchafferF6,
    Sphere,
    Zakharov,
    available_functions,
    get_function,
)
from repro.utils.exceptions import ConfigurationError

ALL_SUITE = [DeJongF2, Zakharov, Rosenbrock, Sphere, SchafferF6, Griewank]


class TestOptimaAndDomains:
    @pytest.mark.parametrize("cls", ALL_SUITE)
    def test_value_at_optimum_is_zero(self, cls):
        f = cls()
        pos = f.optimum_position
        assert pos is not None
        assert f(pos) == pytest.approx(0.0, abs=1e-12)
        assert f.optimum_value == 0.0

    @pytest.mark.parametrize("cls", ALL_SUITE)
    def test_optimum_inside_domain(self, cls):
        f = cls()
        assert bool(f.contains(f.optimum_position[None, :])[0])

    @pytest.mark.parametrize("cls", ALL_SUITE)
    def test_random_points_not_below_optimum(self, cls, rng):
        f = cls()
        pts = f.sample_uniform(rng, 200)
        vals = f.batch(pts)
        assert np.all(vals >= -1e-12)

    def test_paper_dimensions(self):
        assert DeJongF2().dimension == 2
        for cls in (Zakharov, Rosenbrock, Sphere, SchafferF6, Griewank):
            assert cls().dimension == 10


class TestHandComputedValues:
    def test_sphere(self):
        f = Sphere(3)
        assert f(np.array([1.0, 2.0, 3.0])) == pytest.approx(14.0)

    def test_f2(self):
        f = DeJongF2()
        # 100*(x1^2 - x2)^2 + (1-x1)^2 at (2, 1) = 100*9 + 1 = 901
        assert f(np.array([2.0, 1.0])) == pytest.approx(901.0)

    def test_rosenbrock_2d_matches_f2_form(self):
        f = Rosenbrock(2)
        x = np.array([1.5, 2.0])
        expected = 100.0 * (2.0 - 1.5**2) ** 2 + (1 - 1.5) ** 2
        assert f(x) == pytest.approx(expected)

    def test_zakharov(self):
        f = Zakharov(2)
        x = np.array([1.0, 1.0])
        s = 0.5 * 1 * 1.0 + 0.5 * 2 * 1.0  # 1.5
        expected = 2.0 + s**2 + s**4
        assert f(x) == pytest.approx(expected)

    def test_griewank_at_pi_ish(self):
        f = Griewank(2)
        x = np.array([1.0, 2.0])
        expected = 1.0 + (1 + 4) / 4000.0 - np.cos(1.0) * np.cos(2.0 / np.sqrt(2.0))
        assert f(x) == pytest.approx(expected)

    def test_schaffer_2d_known_form(self):
        f = SchafferF6(2)
        x = np.array([3.0, 4.0])  # radius 5
        sq = 25.0
        expected = 0.5 + (np.sin(np.sqrt(sq)) ** 2 - 0.5) / (1 + 0.001 * sq) ** 2
        assert f(x) == pytest.approx(expected)

    def test_schaffer_first_ring_depth(self):
        """The 0.00972 value recurring in the paper's tables is the
        depth of Schaffer's first ring of local minima."""
        f = SchafferF6(2)
        # First local-minimum ring is near radius ~ 3π/2 where sin² is 0
        # again; scan radii to find the first nonzero local min depth.
        radii = np.linspace(2.0, 7.0, 20001)
        pts = np.stack([radii, np.zeros_like(radii)], axis=1)
        vals = f.batch(pts)
        ring_depth = float(vals.min())
        assert ring_depth == pytest.approx(0.00972, abs=2e-4)


class TestBatchSemantics:
    @pytest.mark.parametrize("cls", ALL_SUITE)
    def test_batch_matches_scalar(self, cls, rng):
        f = cls()
        pts = f.sample_uniform(rng, 32)
        batch_vals = f.batch(pts)
        scalar_vals = np.array([f(p) for p in pts])
        assert np.allclose(batch_vals, scalar_vals, rtol=1e-12)

    def test_batch_shape_validation(self):
        f = Sphere(4)
        with pytest.raises(ValueError):
            f.batch(np.zeros((3, 5)))
        with pytest.raises(ValueError):
            f.batch(np.zeros(4))  # 1-D is not a batch

    def test_scalar_shape_validation(self):
        f = Sphere(4)
        with pytest.raises(ValueError):
            f(np.zeros(5))

    def test_empty_batch(self):
        f = Sphere(4)
        assert f.batch(np.zeros((0, 4))).shape == (0,)


class TestRegistry:
    def test_paper_functions_all_registered(self):
        names = available_functions()
        for fname in PAPER_FUNCTIONS:
            assert fname in names

    def test_get_function_default_dimension(self):
        assert get_function("f2").dimension == 2
        assert get_function("sphere").dimension == 10

    def test_get_function_custom_dimension(self):
        assert get_function("sphere", dimension=5).dimension == 5

    def test_unknown_function(self):
        with pytest.raises(ConfigurationError):
            get_function("nonexistent")

    def test_case_insensitive(self):
        assert get_function("SPHERE").NAME == "sphere"

    def test_aliases(self):
        assert get_function("dejong_f2").NAME == "f2"
        assert get_function("schaffer_f6").NAME == "schaffer"

    def test_f2_rejects_other_dimensions(self):
        with pytest.raises(ValueError):
            get_function("f2", dimension=5)

    def test_rosenbrock_needs_two_dims(self):
        with pytest.raises(ValueError):
            get_function("rosenbrock", dimension=1)


class TestDifficultyOrdering:
    def test_random_search_reflects_paper_difficulty(self, rng):
        """Under equal random sampling, the 'hard' functions stay far
        from their optimum relative to their value range — a coarse
        sanity check of the paper's easy/nice/hard classification."""
        budget = 2000
        normalized = {}
        for name in ("sphere", "griewank", "schaffer"):
            f = get_function(name)
            vals = f.batch(f.sample_uniform(rng, budget))
            normalized[name] = float(vals.min() / np.median(vals))
        # Sphere: random best ≪ median. Schaffer: best ≈ median scale.
        assert normalized["sphere"] < normalized["schaffer"]
