"""Tests for the extension benchmark functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.functions.extra import Ackley, Levy, Rastrigin, Schwefel

EXTRA = [Rastrigin, Ackley, Schwefel, Levy]


class TestExtraFunctions:
    @pytest.mark.parametrize("cls", EXTRA)
    def test_value_at_optimum_is_zero(self, cls):
        f = cls()
        assert f(f.optimum_position) == pytest.approx(0.0, abs=1e-6)

    @pytest.mark.parametrize("cls", EXTRA)
    def test_nonnegative_on_random_points(self, cls, rng):
        f = cls()
        vals = f.batch(f.sample_uniform(rng, 300))
        assert np.all(vals >= 0.0)

    @pytest.mark.parametrize("cls", EXTRA)
    def test_batch_matches_scalar(self, cls, rng):
        f = cls()
        pts = f.sample_uniform(rng, 16)
        assert np.allclose(f.batch(pts), [f(p) for p in pts], rtol=1e-12)

    def test_rastrigin_hand_value(self):
        f = Rastrigin(2)
        # At (0.5, 0): 10*2 + (0.25 - 10*cos(pi)) + (0 - 10) = 20 + 10.25 - 10
        assert f(np.array([0.5, 0.0])) == pytest.approx(20.25)

    def test_ackley_far_field_near_20_plus_e(self):
        f = Ackley(2)
        val = f(np.array([30.0, -30.0]))
        assert 18.0 < val < 20.0 + np.e

    def test_schwefel_deceptive_best_near_boundary(self):
        f = Schwefel(2)
        near_opt = f(np.full(2, 420.968746))
        at_origin = f(np.zeros(2))
        assert near_opt < 1e-3
        assert at_origin > 700.0  # origin is far from optimal

    def test_levy_hand_value_at_zero(self):
        f = Levy(1)
        # w = 0.75; f = sin²(πw) + (w−1)²(1+sin²(2πw))
        w = 0.75
        expected = np.sin(np.pi * w) ** 2 + (w - 1) ** 2 * (
            1 + np.sin(2 * np.pi * w) ** 2
        )
        assert f(np.zeros(1)) == pytest.approx(expected)

    @pytest.mark.parametrize("name", ["rastrigin", "ackley", "schwefel", "levy"])
    def test_registered(self, name):
        from repro.functions import get_function

        assert get_function(name).NAME == name
