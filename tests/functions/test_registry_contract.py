"""Registry-wide batch/pointwise contract (hypothesis-backed).

Every *named* function in the registry — including aliases and any
function registered after this test was written — must satisfy the
``Function`` evaluation contract the engines rely on:

* ``batch(points)`` equals ``[f(p) for p in points]`` to floating-point
  roundoff (the SoA fast path evaluates batched, the reference solver
  pointwise; any gap beyond sum-reordering noise — e.g. Zakharov's
  ``pts @ weights`` GEMM vs the single-row dot — would silently break
  cross-engine equivalence);
* ``batch`` returns float64 of shape ``(rows,)``;
* ``__call__`` returns a finite plain float inside the domain box.

Unlike :mod:`tests.functions.test_properties` (which checks the
mathematical invariants of a hand-picked class list), this sweep is
driven off :func:`repro.functions.base.available_functions`, so a new
registry entry is covered the moment it is registered.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.functions.base import available_functions, get_function

ALL_NAMES = available_functions()


def _registry_points(name: str, max_rows: int = 6):
    """Strategy: batches of points inside the named function's box."""
    f = get_function(name)
    lo = float(np.max(f.lower))
    hi = float(np.min(f.upper))
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, max_rows), st.just(f.dimension)),
        elements=st.floats(min_value=lo, max_value=hi, allow_nan=False),
    )


def test_registry_is_populated():
    assert len(ALL_NAMES) >= 8


@pytest.mark.parametrize("name", ALL_NAMES)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_batch_matches_pointwise(name, data):
    fn = get_function(name)
    points = data.draw(_registry_points(name))
    batched = fn.batch(points)

    assert isinstance(batched, np.ndarray)
    assert batched.dtype == np.float64
    assert batched.shape == (points.shape[0],)

    # Snapshot before the pointwise calls: implementations may return
    # a view of an internal scratch buffer that the next batch() call
    # overwrites (the registry contract allows that — callers consume
    # results before re-evaluating).
    batched = batched.copy()
    pointwise = np.array([fn(p) for p in points], dtype=np.float64)
    # Tight tolerance, not exact: BLAS may reorder sums between the
    # one-row and many-row code paths (last-ulp differences only).
    np.testing.assert_allclose(batched, pointwise, rtol=1e-12, atol=0.0)


@pytest.mark.parametrize("name", ALL_NAMES)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_pointwise_values_are_finite_floats(name, data):
    fn = get_function(name)
    points = data.draw(_registry_points(name, max_rows=1))
    value = fn(points[0])
    assert isinstance(value, float)
    assert np.isfinite(value)
