"""Tests for sub-domain functions and box partitioning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.functions.subdomain import SubdomainFunction, partition_box
from repro.functions.suite import Sphere


class TestSubdomainFunction:
    def make(self):
        f = Sphere(4)  # box [-100, 100]^4
        return SubdomainFunction(f, np.full(4, 0.0), np.full(4, 100.0))

    def test_evaluation_unchanged(self, rng):
        inner = Sphere(4)
        zone = SubdomainFunction(inner, np.full(4, 0.0), np.full(4, 100.0))
        pts = inner.sample_uniform(rng, 16)  # full-domain points
        assert np.array_equal(zone.batch(pts), inner.batch(pts))

    def test_sampling_restricted_to_zone(self, rng):
        zone = self.make()
        pts = zone.sample_uniform(rng, 100)
        assert np.all(pts >= 0.0)
        assert np.all(pts <= 100.0)

    def test_domain_width_is_zone_width(self):
        zone = self.make()
        assert np.all(zone.domain_width == 100.0)

    def test_quality_measured_against_global_optimum(self):
        zone = self.make()
        assert zone.optimum_value == 0.0
        assert zone.quality(5.0) == 5.0

    def test_optimum_position_none_when_outside_zone(self):
        f = Sphere(4)
        away = SubdomainFunction(f, np.full(4, 50.0), np.full(4, 100.0))
        assert away.optimum_position is None
        containing = SubdomainFunction(f, np.full(4, -10.0), np.full(4, 10.0))
        assert containing.optimum_position is not None

    def test_validation(self):
        f = Sphere(2)
        with pytest.raises(ValueError):
            SubdomainFunction(f, np.zeros(3), np.ones(3))  # wrong dim
        with pytest.raises(ValueError):
            SubdomainFunction(f, np.ones(2), np.zeros(2))  # inverted
        with pytest.raises(ValueError):
            SubdomainFunction(f, np.full(2, -200.0), np.zeros(2))  # outside


class TestPartitionBox:
    def test_single_zone_is_whole_box(self):
        lo, hi = np.zeros(3), np.ones(3)
        zones = partition_box(lo, hi, 1)
        assert len(zones) == 1
        assert np.array_equal(zones[0][0], lo)
        assert np.array_equal(zones[0][1], hi)

    @pytest.mark.parametrize("count", [2, 3, 4, 7, 8, 16])
    def test_zone_count(self, count):
        zones = partition_box(np.zeros(3), np.ones(3), count)
        assert len(zones) == count

    @pytest.mark.parametrize("count", [2, 4, 8, 16])
    def test_power_of_two_equal_volumes(self, count):
        zones = partition_box(np.zeros(3), np.ones(3), count)
        volumes = [float(np.prod(hi - lo)) for lo, hi in zones]
        assert np.allclose(volumes, 1.0 / count)

    def test_volumes_sum_to_box(self):
        zones = partition_box(np.zeros(4), np.full(4, 2.0), 7)
        total = sum(float(np.prod(hi - lo)) for lo, hi in zones)
        assert total == pytest.approx(2.0**4)

    def test_zones_disjoint_interiors(self, rng):
        zones = partition_box(np.zeros(3), np.ones(3), 8)
        pts = rng.random((500, 3))
        owners = np.zeros(500, dtype=int)
        for lo, hi in zones:
            inside = np.all((pts >= lo) & (pts < hi), axis=1)
            owners += inside.astype(int)
        assert np.all(owners == 1)  # every point in exactly one zone

    def test_deterministic(self):
        a = partition_box(np.zeros(5), np.ones(5), 6)
        b = partition_box(np.zeros(5), np.ones(5), 6)
        for (alo, ahi), (blo, bhi) in zip(a, b):
            assert np.array_equal(alo, blo)
            assert np.array_equal(ahi, bhi)

    def test_splits_widest_dimension_first(self):
        # Box 4 wide in dim 0, 1 wide in dim 1: first split cuts dim 0.
        zones = partition_box(np.array([0.0, 0.0]), np.array([4.0, 1.0]), 2)
        (lo0, hi0), (lo1, hi1) = zones
        assert hi0[0] == pytest.approx(2.0)
        assert lo1[0] == pytest.approx(2.0)
        assert hi0[1] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_box(np.ones(2), np.zeros(2), 2)
        with pytest.raises(ValueError):
            partition_box(np.zeros(2), np.ones(2), 0)
        with pytest.raises(ValueError):
            partition_box(np.zeros((2, 2)), np.ones((2, 2)), 2)


@settings(max_examples=40, deadline=None)
@given(
    count=st.integers(1, 24),
    dim=st.integers(1, 6),
    width=st.floats(min_value=0.5, max_value=100.0),
)
def test_property_partition_covers_and_counts(count, dim, width):
    """Any partition has the right count, stays in the box, and its
    total volume equals the box volume."""
    lo = np.zeros(dim)
    hi = np.full(dim, width)
    zones = partition_box(lo, hi, count)
    assert len(zones) == count
    total = 0.0
    for z_lo, z_hi in zones:
        assert np.all(z_lo >= lo - 1e-12)
        assert np.all(z_hi <= hi + 1e-12)
        assert np.all(z_lo < z_hi)
        total += float(np.prod(z_hi - z_lo))
    assert total == pytest.approx(width**dim, rel=1e-9)
