"""Cross-cutting integration tests: determinism and service swapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.runner import run_experiment, run_single
from repro.topology.static import (
    StaticTopologyProtocol,
    complete_graph,
    grid_2d,
    ring_lattice,
)
from repro.utils.config import ExperimentConfig


def make_config(**overrides) -> ExperimentConfig:
    base = dict(
        function="rosenbrock",
        nodes=9,
        particles_per_node=4,
        total_evaluations=9 * 400,
        gossip_cycle=4,
        repetitions=2,
        seed=77,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestBitReproducibility:
    def test_full_experiment_bit_identical(self):
        a = run_experiment(make_config())
        b = run_experiment(make_config())
        assert [r.best_value for r in a.runs] == [r.best_value for r in b.runs]
        assert [r.cycles for r in a.runs] == [r.cycles for r in b.runs]
        assert [r.messages.coordination_messages for r in a.runs] == [
            r.messages.coordination_messages for r in b.runs
        ]

    def test_churned_run_bit_identical(self):
        from repro.utils.config import ChurnConfig

        cfg = make_config(churn=ChurnConfig(crash_rate=0.02, join_rate=0.02))
        a = run_single(cfg)
        b = run_single(cfg)
        assert a.best_value == b.best_value
        assert a.total_evaluations == b.total_evaluations

    def test_history_trajectories_identical(self):
        a = run_single(make_config(), record_history=True)
        b = run_single(make_config(), record_history=True)
        assert [h.best_value for h in a.history] == [h.best_value for h in b.history]


def adjacency_factory(adjacency):
    def factory(node_id):
        return ("topology", StaticTopologyProtocol(adjacency.get(node_id, [])))

    return factory


class TestTopologySubstitutability:
    """The framework's modularity claim: any PeerSampler topology
    drops in without touching solver or coordination."""

    @pytest.mark.parametrize(
        "builder",
        [
            lambda n: complete_graph(n),
            lambda n: ring_lattice(n),
            lambda n: grid_2d(3, 3, torus=True),
        ],
        ids=["complete", "ring", "grid"],
    )
    def test_static_topologies_run_and_converge(self, builder):
        cfg = make_config(function="sphere")
        adjacency = builder(cfg.nodes)
        result = run_experiment(
            cfg, topology_factory=adjacency_factory(adjacency)
        )
        assert all(np.isfinite(q) for q in result.qualities())
        assert result.quality_stats.mean < 1e4  # better than random

    def test_denser_topology_no_worse_diffusion(self):
        """Complete graph diffuses at least as well as a sparse ring:
        final per-node spread should not be larger."""
        cfg = make_config(function="sphere", repetitions=1)
        ring = run_single(
            cfg, topology_factory=adjacency_factory(ring_lattice(cfg.nodes))
        )
        full = run_single(
            cfg, topology_factory=adjacency_factory(complete_graph(cfg.nodes))
        )
        assert full.node_best_spread <= ring.node_best_spread + 1e-12


class TestCoordinationModes:
    @pytest.mark.parametrize("mode", ["push", "pull", "push-pull"])
    def test_all_modes_complete_budget(self, mode):
        from repro.utils.config import CoordinationConfig

        cfg = make_config(coordination=CoordinationConfig(mode=mode))
        result = run_single(cfg)
        assert result.stop_reason == "budget"
        assert result.total_evaluations == cfg.evaluations_per_node * cfg.nodes

    def test_push_pull_diffuses_at_least_as_well_as_push(self):
        from repro.utils.config import CoordinationConfig

        spreads = {}
        for mode in ("push", "push-pull"):
            cfg = make_config(
                function="sphere",
                repetitions=1,
                coordination=CoordinationConfig(mode=mode),
            )
            spreads[mode] = run_single(cfg).node_best_spread
        assert spreads["push-pull"] <= spreads["push"] + 1e-12


class TestMultiFunctionEndToEnd:
    @pytest.mark.parametrize(
        "function",
        ["f2", "zakharov", "rosenbrock", "sphere", "schaffer", "griewank"],
    )
    def test_every_paper_function_runs(self, function):
        cfg = make_config(function=function, repetitions=1)
        result = run_single(cfg)
        assert np.isfinite(result.quality)
        assert result.quality >= 0.0
        assert result.total_evaluations == cfg.evaluations_per_node * cfg.nodes
