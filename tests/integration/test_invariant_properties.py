"""Property-based (hypothesis) tests of system-level invariants.

These fuzz network shapes, seeds and protocol parameters and assert
the invariants everything else rests on:

* diffusion never *invents* optima — any value a node reports was
  evaluated by some swarm or injected by the test;
* every node's known best is monotonically non-increasing;
* the global budget is consumed exactly, for any (n, k, e, r);
* determinism: a (config, seed) pair fully determines the outcome.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.optimum import Optimum
from repro.core.runner import run_single
from repro.utils.config import ExperimentConfig


@settings(max_examples=12, deadline=None)
@given(
    nodes=st.integers(1, 12),
    particles=st.integers(1, 8),
    evals_per_node=st.integers(10, 120),
    gossip=st.integers(1, 16),
    seed=st.integers(0, 10_000),
)
def test_property_budget_exact_for_any_shape(
    nodes, particles, evals_per_node, gossip, seed
):
    """Exactly e evaluations happen, whatever the configuration."""
    cfg = ExperimentConfig(
        function="sphere",
        nodes=nodes,
        particles_per_node=particles,
        total_evaluations=evals_per_node * nodes,
        gossip_cycle=gossip,
        seed=seed,
    )
    result = run_single(cfg)
    assert result.total_evaluations == evals_per_node * nodes
    assert result.stop_reason == "budget"


@settings(max_examples=10, deadline=None)
@given(
    nodes=st.integers(2, 10),
    seed=st.integers(0, 10_000),
)
def test_property_history_monotone(nodes, seed):
    """The observed global best never regresses, for any seed."""
    cfg = ExperimentConfig(
        function="rosenbrock",
        nodes=nodes,
        particles_per_node=4,
        total_evaluations=nodes * 80,
        gossip_cycle=4,
        seed=seed,
    )
    result = run_single(cfg, record_history=True)
    bests = [h.best_value for h in result.history]
    assert all(b <= a + 1e-15 for a, b in zip(bests, bests[1:]))


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_deterministic(seed):
    """(config, seed) fully determines the run."""
    cfg = ExperimentConfig(
        function="griewank",
        nodes=5,
        particles_per_node=4,
        total_evaluations=400,
        gossip_cycle=4,
        seed=seed,
    )
    a = run_single(cfg)
    b = run_single(cfg)
    assert a.best_value == b.best_value
    assert a.messages.coordination_messages == b.messages.coordination_messages


@settings(max_examples=10, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=1e-12, max_value=1e6), min_size=2, max_size=12
    ),
    seed=st.integers(0, 1000),
)
def test_property_diffusion_never_invents_values(values, seed):
    """After seeding known optima and gossiping, every node's best is
    one of the seeded values or a genuinely evaluated point."""
    from tests.core.test_coordination import build_coordination_network

    n = len(values)
    net, engine, services = build_coordination_network(n, seed=seed)
    evaluated: set[float] = set()
    for service, value in zip(services, values):
        evaluated.add(round(service.local_step(), 12))
        service.offer(Optimum(np.full(4, 1.0), value))
    engine.run(6)
    allowed = {round(v, 12) for v in values} | evaluated
    for service in services:
        assert round(service.current_best().value, 12) in allowed


@settings(max_examples=10, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=1e-12, max_value=1e6), min_size=2, max_size=12
    ),
    seed=st.integers(0, 1000),
)
def test_property_minimum_always_survives(values, seed):
    """The network-wide minimum seeded value is never lost, for any
    seed and any set of values (min-merge is an idempotent lattice
    operation)."""
    from tests.core.test_coordination import build_coordination_network

    n = len(values)
    net, engine, services = build_coordination_network(n, seed=seed)
    floor = min(values)
    for service, value in zip(services, values):
        service.local_step()
        service.offer(Optimum(np.full(4, 1.0), value))
    target = min(min(s.current_best().value for s in services), floor)
    engine.run(6)
    assert min(s.current_best().value for s in services) <= target + 1e-15
