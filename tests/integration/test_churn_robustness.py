"""Fault-injection tests: the paper's robustness claims (Sec. 3.3.4).

"No special provisions are taken to deal with failures. … Nodes may be
subject to churn without affecting the consistency of the overall
computation. … even if a large portion of the network fails, the
computation will end successfully, slowing down proportionally."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dpso import PSOStepProtocol
from repro.core.metrics import GlobalQualityObserver, global_best
from repro.core.node import OptimizationNodeSpec, build_optimization_node
from repro.core.runner import run_single
from repro.functions.base import get_function
from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.topology.newscast import bootstrap_views
from repro.utils.config import (
    ChurnConfig,
    CoordinationConfig,
    ExperimentConfig,
    NewscastConfig,
    PSOConfig,
)
from repro.utils.rng import SeedSequenceTree


def build_running_network(n=24, budget=100_000, seed=44, evals_per_cycle=8):
    tree = SeedSequenceTree(seed)
    spec = OptimizationNodeSpec(
        function=get_function("sphere"),
        pso=PSOConfig(particles=8),
        newscast=NewscastConfig(view_size=12),
        coordination=CoordinationConfig(),
        rng_tree=tree,
        evals_per_cycle=evals_per_cycle,
        budget_per_node=budget,
    )
    net = Network(rng=tree.rng("network"))
    net.populate(n, factory=lambda node: build_optimization_node(node, spec))
    bootstrap_views(net, tree.rng("bootstrap"))
    engine = CycleDrivenEngine(net, rng=tree.rng("engine"))
    return net, engine, spec


class TestMassFailure:
    def test_computation_survives_half_network_crash(self):
        net, engine, _ = build_running_network()
        engine.run(20)
        best_before = global_best(net)
        for nid in range(12):  # kill half
            net.crash(nid)
        engine.run(40)
        best_after = global_best(net)
        assert np.isfinite(best_after)
        assert best_after <= best_before  # survivors keep improving

    def test_survivors_reconverge_on_shared_optimum(self):
        # Small budget so optimization freezes, then extra cycles are
        # pure gossip: survivors must reach exact consensus (while
        # swarms are still improving, a one-cycle diffusion lag keeps
        # per-node bests slightly apart — that is expected, not a bug).
        net, engine, _ = build_running_network(budget=160)
        engine.run(20)  # budget exhausted (20 cycles × 8 evals)
        for nid in range(12):
            net.crash(nid)
        engine.run(30)  # diffusion only
        bests = [
            net.node(nid).protocol("pso").service.current_best().value
            for nid in net.live_ids()
        ]
        assert max(bests) - min(bests) < 1e-12  # consensus restored

    def test_best_never_regresses_during_crashes(self):
        net, engine, _ = build_running_network()
        obs = GlobalQualityObserver()
        engine.add_observer(obs)
        rng = np.random.default_rng(3)
        for wave in range(6):
            engine.run(5)
            live = net.live_ids()
            if len(live) > 6:
                for nid in rng.choice(live, size=2, replace=False):
                    net.crash(int(nid))
        bests = [s.best_value for s in obs.history]
        assert all(b <= a + 1e-15 for a, b in zip(bests, bests[1:]))


class TestJoinersAdopt:
    def test_joiner_receives_optimum_via_gossip(self):
        """Paper: 'as soon as they receive an epidemic message
        containing the swarm optimum … their swarm optimum is
        updated.'"""
        net, engine, spec = build_running_network()
        engine.run(30)
        incumbent_best = global_best(net)

        joiner = net.create_node(birth_cycle=engine.cycle)
        spec(joiner, engine)
        for name in joiner.protocol_names():
            proto = joiner.protocol(name)
            if hasattr(proto, "on_join"):
                proto.on_join(joiner, engine)

        engine.run(25)
        joiner_best = joiner.protocol("pso").service.current_best().value
        # The joiner now knows (at least) the network's incumbent best.
        assert joiner_best <= incumbent_best

    def test_joiner_starts_with_fresh_random_particles(self):
        net, engine, spec = build_running_network()
        engine.run(10)
        joiner = net.create_node(birth_cycle=engine.cycle)
        spec(joiner, engine)
        positions = joiner.protocol("pso").service.swarm.state.positions
        f = get_function("sphere")
        assert np.all(f.contains(positions))
        # Distinct from every existing node's particles.
        for nid in range(5):
            other = net.node(nid).protocol("pso").service.swarm.state.positions
            assert not np.array_equal(positions, other)


class TestContinuousChurn:
    def test_continuous_churn_still_optimizes(self):
        cfg = ExperimentConfig(
            function="sphere", nodes=32, particles_per_node=8,
            total_evaluations=32 * 2000, gossip_cycle=8,
            repetitions=1, seed=45,
            churn=ChurnConfig(crash_rate=0.01, join_rate=0.01, min_population=8),
        )
        result = run_single(cfg)
        assert result.quality < 1.0  # meaningful progress despite churn

    def test_heavier_churn_degrades_gracefully(self):
        """Slowdown proportional to failures, not collapse: heavy
        crash-only churn still lands within a few orders of magnitude
        of the calm network's quality."""
        qualities = {}
        for rate in (0.0, 0.05):
            cfg = ExperimentConfig(
                function="sphere", nodes=32, particles_per_node=8,
                total_evaluations=32 * 1000, gossip_cycle=8,
                repetitions=2, seed=46,
                churn=ChurnConfig(crash_rate=rate, min_population=4),
            )
            from repro.core.runner import run_experiment

            result = run_experiment(cfg)
            qualities[rate] = np.median(
                np.log10(np.maximum(result.qualities(), 1e-300))
            )
        assert np.isfinite(qualities[0.05])
        # Calm should not be *worse*; churned should not collapse to
        # random-search level (log10 ≈ 4 on sphere).
        assert qualities[0.05] < 4.0
