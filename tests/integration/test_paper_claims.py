"""End-to-end tests of the paper's experimental claims (reduced scale).

Each test reproduces the *shape* of one claim from Section 4 at a
scale small enough for CI.  The benchmark harness re-runs the same
shapes at larger scales.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.runner import run_experiment
from repro.utils.config import ExperimentConfig


def log_mean_quality(result) -> float:
    qualities = np.maximum(result.qualities(), 1e-300)
    return float(np.mean(np.log10(qualities)))


@pytest.mark.slow
class TestClaimQualityImprovesWithNodes:
    """Sec 4.1 / Figure 1: fixed per-node budget, more nodes = better."""

    def test_sphere_monotone_in_n(self):
        results = {}
        for n in (1, 8, 64):
            cfg = ExperimentConfig(
                function="sphere", nodes=n, particles_per_node=16,
                total_evaluations=2000 * n, gossip_cycle=16,
                repetitions=3, seed=31,
            )
            results[n] = log_mean_quality(run_experiment(cfg))
        assert results[8] < results[1]
        assert results[64] < results[1]


@pytest.mark.slow
class TestClaimSwarmSizeSweetSpot:
    """Sec 4.1: the benefit of swarm size concentrates in a middle
    range.  Under the literal evaluation-budget reading, the "too many
    particles under-iterate" half of the claim holds on every
    function, and the full interior sweet spot appears on the
    multimodal Schaffer (see EXPERIMENTS.md for the k=1 discussion)."""

    def test_oversized_swarms_underconverge_on_sphere(self):
        results = {}
        for k in (8, 32):
            cfg = ExperimentConfig(
                function="sphere", nodes=8, particles_per_node=k,
                total_evaluations=8 * 1000, gossip_cycle=k,
                repetitions=3, seed=32,
            )
            results[k] = log_mean_quality(run_experiment(cfg))
        assert results[8] < results[32]

    def test_interior_sweet_spot_on_schaffer(self):
        results = {}
        for k in (1, 8, 32):
            cfg = ExperimentConfig(
                function="schaffer", nodes=8, particles_per_node=k,
                total_evaluations=8 * 1000, gossip_cycle=k,
                repetitions=4, seed=32,
            )
            results[k] = log_mean_quality(run_experiment(cfg))
        assert results[8] < results[1]
        assert results[8] < results[32]


@pytest.mark.slow
class TestClaimPartitionInvariance:
    """Sec 4.1 / Figure 2: equal total particles n·k ≈ equal quality,
    regardless of the split across nodes (the headline claim iv)."""

    def test_total_particles_governs_quality(self):
        log_q = {}
        for n, k in ((2, 32), (8, 8), (32, 2)):
            cfg = ExperimentConfig(
                function="sphere", nodes=n, particles_per_node=k,
                total_evaluations=2**15, gossip_cycle=k,
                repetitions=4, seed=33,
            )
            log_q[(n, k)] = log_mean_quality(run_experiment(cfg))
        values = list(log_q.values())
        spread = max(values) - min(values)
        # All three partitions of 64 particles within a few orders of
        # magnitude of each other — versus ~40+ orders across the k
        # sweep at this budget (see exp2 smoke).
        assert spread < 12.0


@pytest.mark.slow
class TestClaimGossipRateHelps:
    """Sec 4.2 / Figure 3: smaller r (more exchanges) is never much
    worse, and tends to help on solvable functions."""

    def test_sphere_r2_beats_r64(self):
        log_q = {}
        for r in (2, 64):
            cfg = ExperimentConfig(
                function="sphere", nodes=16, particles_per_node=16,
                total_evaluations=16 * 1000, gossip_cycle=r,
                repetitions=4, seed=34,
            )
            log_q[r] = log_mean_quality(run_experiment(cfg))
        assert log_q[2] <= log_q[64] + 1.0

    def test_griewank_insensitive_to_r(self):
        """On the unsolved function the gossip rate barely matters —
        'no remarkably better value becomes available'."""
        log_q = {}
        for r in (2, 64):
            cfg = ExperimentConfig(
                function="griewank", nodes=16, particles_per_node=16,
                total_evaluations=16 * 1000, gossip_cycle=r,
                repetitions=4, seed=35,
            )
            log_q[r] = log_mean_quality(run_experiment(cfg))
        assert abs(log_q[2] - log_q[64]) < 1.5


@pytest.mark.slow
class TestClaimTimeScaling:
    """Sec 4.3 / Figure 4: local time to threshold shrinks with n,
    grows with k; Griewank never converges."""

    @staticmethod
    def mean_time(n: int, k: int, function="sphere", threshold=1e-8) -> float | None:
        cfg = ExperimentConfig(
            function=function, nodes=n, particles_per_node=k,
            total_evaluations=2**17, gossip_cycle=k,
            repetitions=3, seed=36, quality_threshold=threshold,
        )
        stats = run_experiment(cfg).time_stats
        return None if stats is None else stats.mean

    def test_time_decreases_with_n(self):
        t1 = self.mean_time(1, 16)
        t16 = self.mean_time(16, 16)
        assert t1 is not None and t16 is not None
        assert t16 < t1

    def test_time_increases_with_k(self):
        t4 = self.mean_time(4, 4)
        t16 = self.mean_time(4, 16)
        assert t4 is not None and t16 is not None
        assert t4 < t16

    def test_griewank_never_converges(self):
        assert self.mean_time(4, 16, function="griewank", threshold=1e-10) is None


@pytest.mark.slow
class TestClaimDistributionCausesNoDetriment:
    """Conclusion (iv): distributing n·k particles over n nodes gives
    results comparable to one n·k-particle machine at equal budget."""

    def test_distributed_matches_centralized_order(self):
        from repro.baselines.centralized import run_centralized

        cfg = ExperimentConfig(
            function="sphere", nodes=16, particles_per_node=4,
            total_evaluations=2**15, gossip_cycle=4,
            repetitions=4, seed=37,
        )
        distributed = run_experiment(cfg)
        centralized = run_centralized(cfg)  # one 64-particle swarm
        d = np.median(np.log10(np.maximum(distributed.qualities(), 1e-300)))
        c = np.median(np.log10(np.maximum(centralized.qualities, 1e-300)))
        assert abs(d - c) < 8.0  # same ballpark on a 40-order scale
