"""Tests for message transports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.engine import CycleDrivenEngine, EventDrivenEngine
from repro.simulator.network import Network
from repro.simulator.protocol import EventProtocol
from repro.simulator.transport import (
    LossyTransport,
    ReliableTransport,
    UniformLatencyTransport,
)
from repro.utils.exceptions import ProtocolError


class Inbox(EventProtocol):
    PROTOCOL_NAME = "inbox"

    def __init__(self):
        self.received = []

    def deliver(self, node, engine, message):
        self.received.append((engine.now, message.src, message.payload))


def build_pair(transport_factory=None, engine_cls=CycleDrivenEngine):
    net = Network(rng=np.random.default_rng(0))
    inboxes = []

    def factory(node):
        box = Inbox()
        inboxes.append(box)
        node.attach("inbox", box)

    net.populate(2, factory=factory)
    transport = transport_factory() if transport_factory else ReliableTransport()
    engine = engine_cls(net, transport=transport, rng=np.random.default_rng(1))
    return net, engine, inboxes


class TestReliableTransport:
    def test_immediate_delivery(self):
        net, engine, inboxes = build_pair()
        ok = engine.transport.send(engine, 0, 1, "inbox", "hello")
        assert ok
        assert inboxes[1].received == [(0.0, 0, "hello")]
        assert engine.transport.stats.sent == 1
        assert engine.transport.stats.delivered == 1

    def test_message_to_dead_node_vanishes(self):
        net, engine, inboxes = build_pair()
        net.crash(1)
        ok = engine.transport.send(engine, 0, 1, "inbox", "hello")
        assert ok  # accepted; loss is invisible to sender
        assert inboxes[1].received == []
        assert engine.transport.stats.to_dead == 1

    def test_missing_protocol_is_programming_error(self):
        net, engine, _ = build_pair()
        with pytest.raises(ProtocolError):
            engine.transport.send(engine, 0, 1, "nope", "x")

    def test_send_convenience_on_protocol(self):
        net, engine, inboxes = build_pair()
        inboxes[0].send(engine, 0, 1, {"k": 1})
        assert inboxes[1].received[0][2] == {"k": 1}


class TestLossyTransport:
    def test_zero_loss_delivers_everything(self):
        factory = lambda: LossyTransport(
            ReliableTransport(), 0.0, np.random.default_rng(2)
        )
        net, engine, inboxes = build_pair(factory)
        for i in range(50):
            engine.transport.send(engine, 0, 1, "inbox", i)
        assert len(inboxes[1].received) == 50

    def test_loss_rate_statistics(self):
        factory = lambda: LossyTransport(
            ReliableTransport(), 0.3, np.random.default_rng(2)
        )
        net, engine, inboxes = build_pair(factory)
        n = 2000
        accepted = sum(
            engine.transport.send(engine, 0, 1, "inbox", i) for i in range(n)
        )
        delivered = len(inboxes[1].received)
        assert accepted == delivered
        assert 0.6 * n < delivered < 0.8 * n  # ≈ 70%
        assert engine.transport.stats.dropped == n - delivered

    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            LossyTransport(ReliableTransport(), 1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            LossyTransport(ReliableTransport(), -0.1, np.random.default_rng(0))

    def test_delivered_counted_at_terminal_delivery_not_send(self):
        """Regression: the decorator used to bump its own ``delivered``
        at sender-side acceptance — over-counting every message the
        inner transport had merely scheduled (latency) and every one
        bound for a dead node.  Delivery is only counted when
        ``_deliver_now`` actually hands the message to a protocol."""
        factory = lambda: LossyTransport(
            UniformLatencyTransport(
                np.random.default_rng(5), min_delay=2.0, max_delay=4.0
            ),
            0.0,
            np.random.default_rng(6),
        )
        net, engine, inboxes = build_pair(factory, engine_cls=EventDrivenEngine)
        for i in range(5):
            assert engine.transport.send(engine, 0, 1, "inbox", i)
        assert engine.transport.stats.sent == 5
        assert engine.transport.stats.delivered == 0  # all still in flight
        engine.run()
        assert engine.transport.stats.delivered == 5

    def test_dead_destination_never_counts_as_delivered(self):
        """The satellite pin: LossyTransport(UniformLatencyTransport)
        with a dead destination reports zero deliveries and the dead
        send on the wrapper's own stats."""
        factory = lambda: LossyTransport(
            UniformLatencyTransport(
                np.random.default_rng(5), min_delay=5.0, max_delay=5.0
            ),
            0.0,
            np.random.default_rng(6),
        )
        net, engine, inboxes = build_pair(factory, engine_cls=EventDrivenEngine)
        assert engine.transport.send(engine, 0, 1, "inbox", "x")  # accepted
        net.crash(1)  # dies while the message is in flight
        engine.run()
        assert inboxes[1].received == []
        assert engine.transport.stats.delivered == 0
        assert engine.transport.stats.to_dead == 1

    def test_wrapper_stats_as_dict_merges_terminal_counters(self):
        inner = ReliableTransport()
        transport = LossyTransport(inner, 0.0, np.random.default_rng(2))
        net, engine, inboxes = build_pair(lambda: transport)
        engine.transport.send(engine, 0, 1, "inbox", "hello")
        assert engine.transport.stats.as_dict() == {
            "sent": 1, "delivered": 1, "dropped": 0, "to_dead": 0,
        }


class TestUniformLatencyTransport:
    def test_delivery_after_delay(self):
        factory = lambda: UniformLatencyTransport(
            np.random.default_rng(3), min_delay=2.0, max_delay=4.0
        )
        net, engine, inboxes = build_pair(factory, engine_cls=EventDrivenEngine)
        engine.transport.send(engine, 0, 1, "inbox", "delayed")
        assert inboxes[1].received == []  # not yet
        engine.run()
        assert len(inboxes[1].received) == 1
        t, src, payload = inboxes[1].received[0]
        assert 2.0 <= t <= 4.0

    def test_messages_can_reorder(self):
        factory = lambda: UniformLatencyTransport(
            np.random.default_rng(7), min_delay=1.0, max_delay=10.0
        )
        net, engine, inboxes = build_pair(factory, engine_cls=EventDrivenEngine)
        for i in range(20):
            engine.transport.send(engine, 0, 1, "inbox", i)
        engine.run()
        payloads = [p for _, _, p in inboxes[1].received]
        assert sorted(payloads) == list(range(20))
        assert payloads != list(range(20))  # at least one inversion

    def test_dead_destination_at_delivery_time(self):
        factory = lambda: UniformLatencyTransport(
            np.random.default_rng(3), min_delay=5.0, max_delay=5.0
        )
        net, engine, inboxes = build_pair(factory, engine_cls=EventDrivenEngine)
        engine.transport.send(engine, 0, 1, "inbox", "x")
        net.crash(1)  # dies while message in flight
        engine.run()
        assert inboxes[1].received == []
        assert engine.transport.stats.to_dead == 1

    def test_invalid_delays(self):
        with pytest.raises(ValueError):
            UniformLatencyTransport(np.random.default_rng(0), min_delay=-1.0)
        with pytest.raises(ValueError):
            UniformLatencyTransport(
                np.random.default_rng(0), min_delay=5.0, max_delay=1.0
            )
