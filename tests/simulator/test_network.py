"""Tests for node/network bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.network import Network, Node
from repro.utils.exceptions import SimulationError


class TestNode:
    def test_attach_and_lookup(self):
        node = Node(0)
        proto = object()
        node.attach("p", proto)
        assert node.protocol("p") is proto
        assert node.has_protocol("p")
        assert not node.has_protocol("q")

    def test_attach_duplicate_raises(self):
        node = Node(0)
        node.attach("p", object())
        with pytest.raises(SimulationError):
            node.attach("p", object())

    def test_missing_protocol_raises(self):
        with pytest.raises(SimulationError):
            Node(0).protocol("nope")

    def test_protocol_names_preserve_attachment_order(self):
        node = Node(0)
        for name in ("c", "a", "b"):
            node.attach(name, object())
        assert node.protocol_names() == ["c", "a", "b"]

    def test_birth_cycle(self):
        assert Node(0).birth_cycle == 0
        assert Node(1, birth_cycle=7).birth_cycle == 7


class TestNetworkPopulation:
    def test_create_assigns_dense_ids(self, network):
        nodes = [network.create_node() for _ in range(5)]
        assert [n.node_id for n in nodes] == [0, 1, 2, 3, 4]
        assert network.size == 5
        assert network.live_count == 5

    def test_populate_with_factory(self, network):
        seen = []
        network.populate(3, factory=lambda n: seen.append(n.node_id))
        assert seen == [0, 1, 2]

    def test_populate_negative_raises(self, network):
        with pytest.raises(ValueError):
            network.populate(-1)

    def test_crash_removes_from_live(self, network):
        network.populate(4)
        network.crash(2)
        assert network.live_count == 3
        assert not network.is_alive(2)
        assert 2 not in network.live_ids()
        assert network.size == 4  # node object retained

    def test_crash_twice_raises(self, network):
        network.populate(2)
        network.crash(0)
        with pytest.raises(SimulationError):
            network.crash(0)

    def test_revive(self, network):
        network.populate(2)
        network.crash(1)
        network.revive(1)
        assert network.is_alive(1)
        assert sorted(network.live_ids()) == [0, 1]

    def test_revive_live_raises(self, network):
        network.populate(1)
        with pytest.raises(SimulationError):
            network.revive(0)

    def test_unknown_node_raises(self, network):
        with pytest.raises(SimulationError):
            network.node(99)

    def test_is_alive_out_of_range_false(self, network):
        assert not network.is_alive(99)
        assert not network.is_alive(-1)

    def test_ids_never_reused(self, network):
        network.populate(3)
        network.crash(1)
        new = network.create_node()
        assert new.node_id == 3

    def test_live_nodes_iteration_skips_dead(self, network):
        network.populate(4)
        network.crash(0)
        network.crash(3)
        assert sorted(n.node_id for n in network.live_nodes()) == [1, 2]


class TestNetworkSampling:
    def test_random_live_node_uniformity(self, rng):
        net = Network(rng=rng)
        net.populate(4)
        counts = {i: 0 for i in range(4)}
        for _ in range(4000):
            counts[net.random_live_node().node_id] += 1
        for c in counts.values():
            assert 800 < c < 1200  # ~1000 expected

    def test_random_live_node_exclude(self, rng):
        net = Network(rng=rng)
        net.populate(3)
        for _ in range(100):
            assert net.random_live_node(exclude=1).node_id != 1

    def test_random_live_node_empty_raises(self, network):
        with pytest.raises(SimulationError):
            network.random_live_node()

    def test_random_live_node_only_excluded_raises(self, rng):
        net = Network(rng=rng)
        net.populate(1)
        with pytest.raises(SimulationError):
            net.random_live_node(exclude=0)

    def test_random_live_node_never_returns_dead(self, rng):
        net = Network(rng=rng)
        net.populate(10)
        for i in range(5):
            net.crash(i)
        for _ in range(200):
            assert net.random_live_node().node_id >= 5

    def test_sample_live_ids_without_replacement(self, rng):
        net = Network(rng=rng)
        net.populate(6)
        sample = net.sample_live_ids(6)
        assert sorted(sample) == list(range(6))

    def test_sample_too_many_raises(self, rng):
        net = Network(rng=rng)
        net.populate(3)
        with pytest.raises(SimulationError):
            net.sample_live_ids(4)

    def test_sample_with_replacement_allows_excess(self, rng):
        net = Network(rng=rng)
        net.populate(2)
        assert len(net.sample_live_ids(10, replace=True)) == 10

    def test_sample_negative_raises(self, rng):
        net = Network(rng=rng)
        net.populate(2)
        with pytest.raises(ValueError):
            net.sample_live_ids(-1)
