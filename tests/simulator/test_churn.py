"""Tests for synthetic churn processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.churn import (
    ChurnProcess,
    SessionChurn,
    geometric_sessions,
    lognormal_sessions,
)
from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.simulator.protocol import CycleProtocol
from repro.utils.config import ChurnConfig


class Noop(CycleProtocol):
    PROTOCOL_NAME = "noop"

    def __init__(self):
        self.joined = 0
        self.crashed = 0

    def next_cycle(self, node, engine):
        pass

    def on_join(self, node, engine):
        self.joined += 1

    def on_crash(self, node, engine):
        self.crashed += 1


def factory(node, engine=None):
    node.attach("noop", Noop())


def build_engine(n: int, churn) -> CycleDrivenEngine:
    net = Network(rng=np.random.default_rng(0))
    net.populate(n, factory=lambda node: factory(node))
    return CycleDrivenEngine(net, rng=np.random.default_rng(1), churn=churn)


class TestChurnProcess:
    def test_crash_rate_thins_population(self):
        churn = ChurnProcess(
            ChurnConfig(crash_rate=0.05), None, np.random.default_rng(2)
        )
        engine = build_engine(200, churn)
        engine.run(20)
        # E[survivors] = 200 * 0.95^20 ≈ 72; allow generous slack.
        assert 30 < engine.network.live_count < 130
        assert churn.crashes == 200 - engine.network.live_count

    def test_join_rate_grows_population(self):
        churn = ChurnProcess(
            ChurnConfig(join_rate=0.05), factory, np.random.default_rng(2)
        )
        engine = build_engine(100, churn)
        engine.run(20)
        # E[joins] = 20 cycles * 5/cycle = 100.
        assert engine.network.size > 140
        assert churn.joins == engine.network.size - 100

    def test_balanced_churn_roughly_stationary(self):
        churn = ChurnProcess(
            ChurnConfig(crash_rate=0.02, join_rate=0.02),
            factory,
            np.random.default_rng(2),
        )
        engine = build_engine(150, churn)
        engine.run(30)
        assert 100 < engine.network.live_count < 220

    def test_min_population_floor(self):
        churn = ChurnProcess(
            ChurnConfig(crash_rate=0.5, min_population=5),
            None,
            np.random.default_rng(2),
        )
        engine = build_engine(20, churn)
        engine.run(50)
        assert engine.network.live_count >= 5

    def test_join_requires_factory(self):
        with pytest.raises(ValueError):
            ChurnProcess(ChurnConfig(join_rate=0.1), None, np.random.default_rng(0))

    def test_lifecycle_hooks_fire(self):
        churn = ChurnProcess(
            ChurnConfig(crash_rate=0.2, join_rate=0.2),
            factory,
            np.random.default_rng(2),
        )
        engine = build_engine(50, churn)
        engine.run(10)
        crashed_hooks = sum(
            node.protocol("noop").crashed
            for node in engine.network.all_nodes()
        )
        joined_hooks = sum(
            node.protocol("noop").joined
            for node in engine.network.all_nodes()
        )
        assert crashed_hooks == churn.crashes
        assert joined_hooks == churn.joins

    def test_joiners_get_birth_cycle(self):
        churn = ChurnProcess(
            ChurnConfig(join_rate=0.5), factory, np.random.default_rng(2)
        )
        engine = build_engine(10, churn)
        engine.run(5)
        joiners = [n for n in engine.network.all_nodes() if n.node_id >= 10]
        assert joiners
        assert all(n.birth_cycle >= 0 for n in joiners)


class TestSessionChurn:
    def test_sessions_expire(self):
        churn = SessionChurn(
            session_sampler=lambda rng: 3,
            arrivals_per_cycle=0.0,
            factory=factory,
            rng=np.random.default_rng(2),
            min_population=1,
        )
        engine = build_engine(10, churn)
        engine.run(10)
        assert engine.network.live_count == 1  # floor held, rest expired

    def test_stationary_with_arrivals(self):
        churn = SessionChurn(
            session_sampler=geometric_sessions(10.0),
            arrivals_per_cycle=5.0,
            factory=factory,
            rng=np.random.default_rng(2),
        )
        engine = build_engine(50, churn)
        engine.run(40)
        # Little's law: E[population] = arrival_rate * mean_session = 50.
        assert 20 < engine.network.live_count < 100

    def test_bad_session_length_raises(self):
        churn = SessionChurn(
            session_sampler=lambda rng: 0,
            arrivals_per_cycle=0.0,
            factory=factory,
            rng=np.random.default_rng(2),
        )
        engine = build_engine(3, churn)
        with pytest.raises(ValueError):
            engine.run(1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SessionChurn(lambda r: 1, -1.0, factory, np.random.default_rng(0))
        with pytest.raises(ValueError):
            SessionChurn(lambda r: 1, 0.0, factory, np.random.default_rng(0),
                         min_population=0)


class TestSessionSamplers:
    def test_geometric_mean_close(self, rng):
        sampler = geometric_sessions(8.0)
        draws = [sampler(rng) for _ in range(4000)]
        assert 7.0 < np.mean(draws) < 9.0
        assert min(draws) >= 1

    def test_lognormal_median_close(self, rng):
        sampler = lognormal_sessions(20.0, sigma=0.5)
        draws = [sampler(rng) for _ in range(4000)]
        assert 15.0 < np.median(draws) < 25.0
        assert min(draws) >= 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            geometric_sessions(0.5)
        with pytest.raises(ValueError):
            lognormal_sessions(0.5)
        with pytest.raises(ValueError):
            lognormal_sessions(10.0, sigma=0.0)
