"""Tests for the event-driven engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.engine import EventDrivenEngine
from repro.simulator.network import Network
from repro.utils.exceptions import SimulationError


def make_engine() -> EventDrivenEngine:
    return EventDrivenEngine(Network(rng=np.random.default_rng(0)),
                             rng=np.random.default_rng(1))


class TestEventOrdering:
    def test_time_order(self):
        engine = make_engine()
        order = []
        engine.schedule(3.0, lambda e: order.append("c"))
        engine.schedule(1.0, lambda e: order.append("a"))
        engine.schedule(2.0, lambda e: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        engine = make_engine()
        order = []
        for tag in "abc":
            engine.schedule(1.0, lambda e, t=tag: order.append(t))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_now_advances_with_events(self):
        engine = make_engine()
        times = []
        engine.schedule(5.0, lambda e: times.append(e.now))
        engine.schedule(2.5, lambda e: times.append(e.now))
        engine.run()
        assert times == [2.5, 5.0]

    def test_schedule_in_past_raises(self):
        engine = make_engine()
        engine.schedule(1.0, lambda e: None)
        engine.run()
        assert engine.now == 1.0
        with pytest.raises(SimulationError):
            engine.schedule(0.5, lambda e: None)

    def test_schedule_at_now_allowed(self):
        engine = make_engine()
        order = []
        def chain(e):
            order.append("first")
            e.schedule(e.now, lambda e2: order.append("second"))
        engine.schedule(1.0, chain)
        engine.run()
        assert order == ["first", "second"]


class TestRunBounds:
    def test_until_leaves_future_events_queued(self):
        engine = make_engine()
        fired = []
        engine.schedule(1.0, lambda e: fired.append(1))
        engine.schedule(10.0, lambda e: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.pending_events == 1
        assert engine.now == 5.0
        engine.run()
        assert fired == [1, 10]

    def test_max_events(self):
        engine = make_engine()
        for t in range(5):
            engine.schedule(float(t + 1), lambda e: None)
        processed = engine.run(max_events=3)
        assert processed == 3
        assert engine.pending_events == 2

    def test_stop_interrupts(self):
        engine = make_engine()
        fired = []
        engine.schedule(1.0, lambda e: (fired.append(1), e.stop("halt")))
        engine.schedule(2.0, lambda e: fired.append(2))
        engine.run()
        assert fired == [1]

    def test_events_processed_counter(self):
        engine = make_engine()
        for t in range(4):
            engine.schedule(float(t), lambda e: None)
        engine.run()
        assert engine.events_processed == 4


class TestPeriodic:
    def test_periodic_fires_until_stopped(self):
        engine = make_engine()
        ticks = []
        engine.schedule_periodic(1.0, 2.0, lambda e: ticks.append(e.now))
        engine.run(until=9.0)
        assert ticks == [1.0, 3.0, 5.0, 7.0, 9.0]

    def test_periodic_with_jitter_spreads(self):
        engine = make_engine()
        ticks = []
        engine.schedule_periodic(0.0, 1.0, lambda e: ticks.append(e.now), jitter=0.5)
        engine.run(until=10.0)
        gaps = np.diff(ticks)
        assert np.all(gaps >= 1.0 - 1e-9)
        assert np.all(gaps <= 1.5 + 1e-9)
        assert len(set(np.round(gaps, 6))) > 1  # jitter actually varies

    def test_bad_period_raises(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            engine.schedule_periodic(0.0, 0.0, lambda e: None)
        with pytest.raises(ValueError):
            engine.schedule_periodic(0.0, 1.0, lambda e: None, jitter=-1.0)

    def test_jitter_drifts_instead_of_resynchronizing(self):
        # Each firing schedules the next relative to *its own* time,
        # so jitter accumulates as clock drift — the timer never snaps
        # back to the nominal grid.  This is the desynchronization the
        # deployment runtime (and the cohort event engine's timer
        # model) rely on.
        engine = make_engine()
        ticks: list[float] = []
        engine.schedule_periodic(0.0, 1.0, lambda e: ticks.append(e.now),
                                 jitter=0.5)
        engine.run(until=200.0)
        nominal = np.arange(len(ticks), dtype=float)
        drift = np.asarray(ticks) - nominal
        # Drift is cumulative (non-decreasing, since jitter >= 0) and
        # grows without bound — by E[jitter]/2 per period on average.
        assert np.all(np.diff(drift) >= -1e-9)
        assert drift[-1] > 10.0
        assert drift[-1] > drift[len(drift) // 2]

    def test_zero_jitter_stays_on_grid(self):
        engine = make_engine()
        ticks: list[float] = []
        engine.schedule_periodic(0.5, 1.0, lambda e: ticks.append(e.now))
        engine.run(until=50.0)
        assert ticks == pytest.approx([0.5 + i for i in range(len(ticks))])
        assert len(ticks) == 50

    def test_periodic_stops_with_engine_stop(self):
        engine = make_engine()
        ticks: list[float] = []

        def tick(e):
            ticks.append(e.now)
            if len(ticks) == 3:
                e.stop("enough")

        engine.schedule_periodic(1.0, 1.0, tick)
        engine.run(until=100.0)
        assert len(ticks) == 3
        assert engine.pending_events == 0  # no rescheduling after stop
