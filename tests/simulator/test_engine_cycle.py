"""Tests for the cycle-driven engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.simulator.observers import FunctionObserver, StopCondition
from repro.simulator.protocol import CycleProtocol
from repro.utils.exceptions import SimulationError


class RecordingProtocol(CycleProtocol):
    """Records (cycle, node_id) at every callback."""

    PROTOCOL_NAME = "recorder"

    def __init__(self, log: list):
        self.log = log

    def next_cycle(self, node, engine):
        self.log.append((engine.cycle, node.node_id))


def build(n: int, rng=None):
    net = Network(rng=rng or np.random.default_rng(0))
    log: list = []
    net.populate(n, factory=lambda node: node.attach("recorder", RecordingProtocol(log)))
    engine = CycleDrivenEngine(net, rng=np.random.default_rng(1))
    return net, engine, log


class TestCycleExecution:
    def test_every_live_node_called_once_per_cycle(self):
        net, engine, log = build(5)
        engine.run(3)
        assert len(log) == 15
        for cycle in range(3):
            ids = sorted(nid for c, nid in log if c == cycle)
            assert ids == [0, 1, 2, 3, 4]

    def test_returns_cycles_executed(self):
        _, engine, _ = build(2)
        assert engine.run(4) == 4
        assert engine.cycle == 4
        assert engine.now == 4.0

    def test_zero_cycles(self):
        _, engine, log = build(2)
        assert engine.run(0) == 0
        assert log == []

    def test_negative_cycles_raises(self):
        _, engine, _ = build(1)
        with pytest.raises(ValueError):
            engine.run(-1)

    def test_order_shuffles_between_cycles(self):
        # With 12 nodes the probability two consecutive cycles share
        # the identical order is 1/12! — a deterministic-seed test.
        net, engine, log = build(12)
        engine.run(2)
        order0 = [nid for c, nid in log if c == 0]
        order1 = [nid for c, nid in log if c == 1]
        assert sorted(order0) == sorted(order1)
        assert order0 != order1

    def test_dead_nodes_skipped(self):
        net, engine, log = build(3)
        net.crash(1)
        engine.run(2)
        assert all(nid != 1 for _, nid in log)

    def test_extinct_population_stops(self):
        net, engine, _ = build(2)
        net.crash(0)
        net.crash(1)
        executed = engine.run(5)
        assert executed == 0
        assert engine.stop_reason == "population extinct"


class TestStopAndObservers:
    def test_stop_mid_run(self):
        net, engine, log = build(3)
        engine.add_observer(
            FunctionObserver(lambda eng: eng.stop("enough") if eng.cycle >= 2 else None)
        )
        executed = engine.run(10)
        assert executed == 2
        assert engine.stop_reason == "enough"

    def test_observers_run_in_registration_order(self):
        _, engine, _ = build(1)
        calls = []
        engine.add_observer(FunctionObserver(lambda e: calls.append("a")))
        engine.add_observer(FunctionObserver(lambda e: calls.append("b")))
        engine.run(2)
        assert calls == ["a", "b", "a", "b"]

    def test_stop_condition_records_trigger_cycle(self):
        _, engine, _ = build(1)
        cond = StopCondition(lambda eng: eng.cycle >= 3, reason="done")
        engine.add_observer(cond)
        engine.run(10)
        assert cond.triggered_at == 3
        assert engine.stop_reason == "done"

    def test_protocol_can_stop_engine(self):
        class Stopper(CycleProtocol):
            def next_cycle(self, node, engine):
                engine.stop("protocol said so")

        net = Network(rng=np.random.default_rng(0))
        net.populate(3, factory=lambda n: n.attach("s", Stopper()))
        engine = CycleDrivenEngine(net, rng=np.random.default_rng(1))
        executed = engine.run(10)
        assert executed == 0  # stop honored before the cycle completed
        assert engine.stop_reason == "protocol said so"

    def test_run_after_stop_is_noop(self):
        _, engine, log = build(2)
        engine.stop("manual")
        assert engine.run(5) == 0
        assert log == []


class TestSchedulingUnsupported:
    def test_cycle_engine_rejects_schedule(self):
        _, engine, _ = build(1)
        with pytest.raises(SimulationError):
            engine.schedule(1.0, lambda e: None)
