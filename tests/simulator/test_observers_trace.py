"""Tests for observers and the trace recorder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.simulator.observers import FunctionObserver, PeriodicObserver, StopCondition
from repro.simulator.trace import TraceRecorder, emit


def build_engine(n=2) -> CycleDrivenEngine:
    net = Network(rng=np.random.default_rng(0))
    net.populate(n)
    return CycleDrivenEngine(net, rng=np.random.default_rng(1))


class TestObservers:
    def test_function_observer(self):
        engine = build_engine()
        cycles = []
        engine.add_observer(FunctionObserver(lambda e: cycles.append(e.cycle)))
        engine.run(3)
        assert cycles == [1, 2, 3]

    def test_periodic_observer(self):
        engine = build_engine()
        cycles = []
        inner = FunctionObserver(lambda e: cycles.append(e.cycle))
        engine.add_observer(PeriodicObserver(inner, period=3))
        engine.run(9)
        assert cycles == [3, 6, 9]

    def test_periodic_requires_positive_period(self):
        with pytest.raises(ValueError):
            PeriodicObserver(FunctionObserver(lambda e: None), period=0)

    def test_stop_condition_reason(self):
        engine = build_engine()
        engine.add_observer(StopCondition(lambda e: e.cycle >= 2, reason="why"))
        engine.run(10)
        assert engine.stop_reason == "why"


class TestTraceRecorder:
    def test_emit_and_filter(self):
        rec = TraceRecorder()
        rec.emit(0.0, "a", 1, "x")
        rec.emit(1.0, "b", 2, "y")
        rec.emit(2.0, "a", 2, "z")
        assert len(rec) == 3
        assert [r.detail for r in rec.records(kind="a")] == ["x", "z"]
        assert [r.detail for r in rec.records(node=2)] == ["y", "z"]
        assert [r.detail for r in rec.records(kind="a", node=2)] == ["z"]

    def test_capacity_evicts_oldest(self):
        rec = TraceRecorder(capacity=2)
        for i in range(5):
            rec.emit(float(i), "k", None, i)
        assert [r.detail for r in rec.records()] == [3, 4]
        assert rec.emitted == 5

    def test_kind_whitelist(self):
        rec = TraceRecorder(kinds=["keep"])
        rec.emit(0.0, "keep", None)
        rec.emit(0.0, "drop", None)
        assert len(rec) == 1

    def test_attach_and_module_emit(self):
        engine = build_engine()
        rec = TraceRecorder().attach(engine)
        emit(engine, "evt", 0, "payload")
        assert engine.trace is rec
        assert rec.records(kind="evt")[0].detail == "payload"

    def test_emit_without_recorder_is_noop(self):
        engine = build_engine()
        emit(engine, "evt", 0)  # must not raise

    def test_clear_keeps_emitted_counter(self):
        rec = TraceRecorder()
        rec.emit(0.0, "k", None)
        rec.clear()
        assert len(rec) == 0
        assert rec.emitted == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)
