"""Tests for tables, ASCII plots and CSV export."""

from __future__ import annotations

import csv
import io
import math

import pytest

from repro.analysis.export import results_to_csv, rows_to_csv
from repro.analysis.plots import Series, ascii_plot
from repro.analysis.tables import (
    format_paper_table,
    format_value,
    quality_table_rows,
    time_table_rows,
)
from repro.core.runner import run_experiment
from repro.utils.config import ExperimentConfig


@pytest.fixture(scope="module")
def small_result():
    cfg = ExperimentConfig(
        function="sphere", nodes=4, particles_per_node=4,
        total_evaluations=800, gossip_cycle=4, repetitions=2, seed=3,
    )
    return run_experiment(cfg)


@pytest.fixture(scope="module")
def threshold_result():
    cfg = ExperimentConfig(
        function="sphere", nodes=4, particles_per_node=16,
        total_evaluations=2**15, gossip_cycle=16, repetitions=2, seed=3,
        quality_threshold=1e-6,
    )
    return run_experiment(cfg)


class TestFormatValue:
    def test_none_and_nan_dash(self):
        assert format_value(None) == "–"
        assert format_value(float("nan")) == "–"

    def test_zero(self):
        assert format_value(0.0) == "0.0"

    def test_plain_decimals(self):
        assert format_value(0.52043) == "0.52043"
        assert format_value(235940.0) == "235940"

    def test_scientific_for_extremes(self):
        assert "E-51" in format_value(2.49767e-51)
        assert "E+08" in format_value(2.48384e8)

    def test_precision(self):
        assert format_value(1.23456789e-10, precision=3) == "1.235E-10"


class TestTables:
    def test_quality_rows(self, small_result):
        rows = quality_table_rows({"sphere": small_result})
        assert rows[0]["function"] == "sphere"
        assert rows[0]["avg"] != "–"

    def test_time_rows_with_success(self, threshold_result):
        rows = time_table_rows({"sphere": threshold_result})
        assert rows[0]["avg"] != "–"

    def test_time_rows_never_converged(self, small_result):
        # small_result has no threshold -> time stats None -> dashes.
        rows = time_table_rows({"sphere": small_result})
        assert rows[0] == {
            "function": "sphere", "avg": "–", "min": "–", "max": "–", "var": "–"
        }

    def test_format_paper_table_alignment(self, small_result):
        rows = quality_table_rows({"sphere": small_result})
        text = format_paper_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Function" in lines[1]
        assert set(lines[2]) == {"-"}
        assert "sphere" in lines[3]

    def test_empty_rows(self):
        text = format_paper_table([], title="empty")
        assert "Function" in text


class TestAsciiPlot:
    def test_basic_render(self):
        s = Series("a", [0, 1, 2], [0.0, 1.0, 4.0])
        out = ascii_plot([s], title="demo")
        assert "demo" in out
        assert "o = a" in out
        assert "o" in out.splitlines()[1]

    def test_multiple_series_distinct_markers(self):
        out = ascii_plot(
            [Series("a", [0, 1], [0, 1]), Series("b", [0, 1], [1, 0])]
        )
        assert "o = a" in out
        assert "x = b" in out

    def test_nonfinite_points_dropped(self):
        s = Series("a", [0, 1, 2], [1.0, float("nan"), 2.0])
        out = ascii_plot([s])
        assert "(no data)" not in out

    def test_all_nan_series_flagged(self):
        out = ascii_plot(
            [Series("ok", [0, 1], [0, 1]), Series("gone", [0, 1], [float("nan")] * 2)]
        )
        assert "gone (no data)" in out

    def test_empty_everything(self):
        out = ascii_plot([Series("a", [], [])])
        assert "no finite data" in out

    def test_log_x_axis(self):
        s = Series("a", [1, 1024], [0.0, 1.0])
        out = ascii_plot([s], logx=True)
        assert "log2" in out

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Series("a", [1, 2], [1.0])

    def test_canvas_too_small(self):
        with pytest.raises(ValueError):
            ascii_plot([Series("a", [0], [0])], width=4, height=2)

    def test_constant_series_handled(self):
        out = ascii_plot([Series("a", [0, 1, 2], [5.0, 5.0, 5.0])])
        assert "o = a" in out


class TestCsvExport:
    def test_round_trip(self, small_result):
        text = results_to_csv([small_result])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2  # repetitions
        assert rows[0]["function"] == "sphere"
        assert int(rows[0]["nodes"]) == 4
        assert float(rows[0]["quality"]) >= 0.0
        assert rows[0]["repetition"] == "0"
        assert rows[1]["repetition"] == "1"

    def test_writes_file(self, small_result, tmp_path):
        path = tmp_path / "out.csv"
        text = results_to_csv([small_result], path=path)
        assert path.read_text() == text

    def test_threshold_fields(self, threshold_result):
        text = results_to_csv([threshold_result])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert all(r["threshold_local_time"] not in ("", "None") for r in rows)

    def test_rows_to_csv(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        text = rows_to_csv(rows, path=tmp_path / "rows.csv")
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed[1]["b"] == "y"

    def test_rows_to_csv_empty(self):
        assert rows_to_csv([]) == ""
