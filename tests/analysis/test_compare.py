"""Tests for the statistical comparison helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.compare import (
    Comparison,
    bootstrap_log_ci,
    compare_systems,
    rank_sum_test,
)


class TestBootstrapCI:
    def test_ci_brackets_median(self, rng):
        qualities = 10.0 ** rng.normal(-5.0, 1.0, size=40)
        med, lo, hi = bootstrap_log_ci(qualities, seed=1)
        assert lo <= med <= hi
        assert -6.5 < med < -3.5

    def test_narrower_with_more_data(self, rng):
        small = 10.0 ** rng.normal(-5.0, 1.0, size=8)
        large = 10.0 ** rng.normal(-5.0, 1.0, size=200)
        _, lo_s, hi_s = bootstrap_log_ci(small, seed=2)
        _, lo_l, hi_l = bootstrap_log_ci(large, seed=2)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_deterministic_given_seed(self, rng):
        q = 10.0 ** rng.normal(-3.0, 2.0, size=20)
        assert bootstrap_log_ci(q, seed=5) == bootstrap_log_ci(q, seed=5)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_log_ci([], seed=0)
        with pytest.raises(ValueError):
            bootstrap_log_ci([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_log_ci([1.0], resamples=10)
        with pytest.raises(ValueError):
            bootstrap_log_ci([-1.0])


class TestRankSumTest:
    def test_clearly_different_samples(self, rng):
        a = 10.0 ** rng.normal(-10.0, 0.5, size=20)
        b = 10.0 ** rng.normal(-2.0, 0.5, size=20)
        _, p = rank_sum_test(a, b)
        assert p < 1e-4

    def test_same_distribution_not_significant(self, rng):
        a = 10.0 ** rng.normal(-5.0, 1.0, size=20)
        b = 10.0 ** rng.normal(-5.0, 1.0, size=20)
        _, p = rank_sum_test(a, b)
        assert p > 0.01

    def test_all_identical_values(self):
        _, p = rank_sum_test([1.0] * 5, [1.0] * 5)
        assert p == 1.0

    def test_symmetry(self, rng):
        a = 10.0 ** rng.normal(-7.0, 1.0, size=15)
        b = 10.0 ** rng.normal(-4.0, 1.0, size=15)
        _, p_ab = rank_sum_test(a, b)
        _, p_ba = rank_sum_test(b, a)
        assert p_ab == pytest.approx(p_ba, rel=1e-9)

    def test_minimum_sizes(self):
        with pytest.raises(ValueError):
            rank_sum_test([1.0], [1.0, 2.0])

    def test_matches_scipy(self, rng):
        scipy_stats = pytest.importorskip("scipy.stats")
        a = 10.0 ** rng.normal(-6.0, 1.0, size=18)
        b = 10.0 ** rng.normal(-5.0, 1.0, size=22)
        _, p_ours = rank_sum_test(a, b)
        ref = scipy_stats.mannwhitneyu(
            np.log10(a), np.log10(b), alternative="two-sided",
            method="asymptotic", use_continuity=False,
        )
        assert p_ours == pytest.approx(ref.pvalue, rel=0.05)


class TestCompareSystems:
    def test_verdict_direction(self, rng):
        better = 10.0 ** rng.normal(-12.0, 0.5, size=15)
        worse = 10.0 ** rng.normal(-3.0, 0.5, size=15)
        cmp = compare_systems(better, worse)
        assert cmp.advantage_orders > 5.0
        assert cmp.significant
        assert "A leads" in cmp.verdict()

    def test_verdict_names(self, rng):
        a = 10.0 ** rng.normal(-1.0, 0.5, size=10)
        b = 10.0 ** rng.normal(-9.0, 0.5, size=10)
        text = compare_systems(a, b).verdict("framework", "baseline")
        assert "baseline leads" in text


@settings(max_examples=30, deadline=None)
@given(
    shift=st.floats(min_value=0.0, max_value=8.0),
    seed=st.integers(0, 1000),
)
def test_property_advantage_tracks_shift(shift, seed):
    """The measured advantage tracks the true log-median separation."""
    rng = np.random.default_rng(seed)
    a = 10.0 ** rng.normal(-5.0 - shift, 0.5, size=25)
    b = 10.0 ** rng.normal(-5.0, 0.5, size=25)
    cmp = compare_systems(a, b)
    assert cmp.advantage_orders == pytest.approx(shift, abs=1.0)
