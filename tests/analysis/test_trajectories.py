"""Tests for convergence-trajectory analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.trajectories import (
    align_curves,
    crossover_budget,
    log_slope,
    quality_curve,
)
from repro.core.metrics import QualitySample
from repro.core.runner import run_single
from repro.utils.config import ExperimentConfig


def synthetic_history(values, evals_per_cycle=10):
    return [
        QualitySample(cycle=i, evaluations=(i + 1) * evals_per_cycle, best_value=v)
        for i, v in enumerate(values)
    ]


class TestQualityCurve:
    def test_extraction(self):
        hist = synthetic_history([5.0, 3.0, 1.0])
        evals, best = quality_curve(hist)
        assert np.array_equal(evals, [10, 20, 30])
        assert np.array_equal(best, [5.0, 3.0, 1.0])

    def test_empty(self):
        evals, best = quality_curve([])
        assert evals.size == 0

    def test_real_run_curve_monotone(self):
        cfg = ExperimentConfig(
            function="sphere", nodes=4, particles_per_node=4,
            total_evaluations=2000, gossip_cycle=4, seed=3,
        )
        result = run_single(cfg, record_history=True)
        evals, best = quality_curve(result.history)
        assert np.all(np.diff(evals) > 0)
        assert np.all(np.diff(best) <= 1e-15)


class TestAlignCurves:
    def test_staircase_semantics(self):
        curve = (np.array([10.0, 20.0, 30.0]), np.array([5.0, 3.0, 1.0]))
        grid, values = align_curves([curve], grid=np.array([5.0, 10.0, 25.0, 30.0]))
        assert values[0, 0] == np.inf  # before first sample
        assert values[0, 1] == 5.0
        assert values[0, 2] == 3.0
        assert values[0, 3] == 1.0

    def test_default_grid_covers_shortest(self):
        a = (np.array([10.0, 100.0]), np.array([2.0, 1.0]))
        b = (np.array([10.0, 50.0]), np.array([3.0, 2.0]))
        grid, values = align_curves([a, b], points=5)
        assert grid[-1] == 50.0
        assert values.shape == (2, 5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            align_curves([])


class TestLogSlope:
    def test_exponential_decay_rate(self):
        evals = np.arange(0, 5000, 100, dtype=float)
        best = 10.0 ** (-evals / 1000.0)  # exactly 1 decade per 1000
        assert log_slope(evals, best, tail_fraction=1.0) == pytest.approx(-1.0, rel=1e-6)

    def test_stalled_curve_slope_zero(self):
        evals = np.arange(0, 3000, 100, dtype=float)
        best = np.full(evals.size, 0.5)
        assert log_slope(evals, best) == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            log_slope(np.array([1.0, 2.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            log_slope(np.arange(10.0), np.ones(10), tail_fraction=0.0)


class TestCrossover:
    def test_crossover_detected(self):
        grid = np.array([0.0, 100.0, 200.0, 300.0])
        # A starts worse, ends better.
        a = np.array([[1e2, 1e0, 1e-4, 1e-8]])
        b = np.array([[1e1, 1e-1, 1e-2, 1e-3]])
        cross = crossover_budget(grid, a, b)
        assert cross == 200.0

    def test_a_leads_throughout(self):
        grid = np.array([0.0, 100.0])
        a = np.array([[1e-3, 1e-6]])
        b = np.array([[1e0, 1e-1]])
        assert crossover_budget(grid, a, b) == 0.0

    def test_never_crosses(self):
        grid = np.array([0.0, 100.0])
        a = np.array([[1e0, 1e-1]])
        b = np.array([[1e-3, 1e-6]])
        assert crossover_budget(grid, a, b) is None

    def test_small_vs_large_swarm_crossover_exists(self):
        """The k trade-off made measurable: a small swarm converges
        deeper per evaluation late, a large swarm explores better
        early — their mean curves cross."""
        def curves(k, reps=3):
            out = []
            for rep in range(reps):
                cfg = ExperimentConfig(
                    function="sphere", nodes=4, particles_per_node=k,
                    total_evaluations=4 * 1500, gossip_cycle=k, seed=17,
                )
                res = run_single(cfg, repetition=rep, record_history=True)
                out.append(quality_curve(res.history))
            return out

        small = curves(4)
        large = curves(32)
        grid = np.linspace(200, 5500, 25)
        _, small_vals = align_curves(small, grid=grid)
        _, large_vals = align_curves(large, grid=grid)
        # Large-k leads at the very start (more initial samples)...
        # small-k must overtake at some budget.
        cross = crossover_budget(grid, small_vals, large_vals)
        assert cross is not None
