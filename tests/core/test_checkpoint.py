"""Tests for simulation checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checkpoint import (
    load_checkpoint,
    peek_metadata,
    save_checkpoint,
)
from repro.core.metrics import GlobalQualityObserver, global_best
from repro.core.node import OptimizationNodeSpec, build_optimization_node
from repro.functions.base import get_function
from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.topology.newscast import bootstrap_views
from repro.utils.config import CoordinationConfig, NewscastConfig, PSOConfig
from repro.utils.exceptions import SimulationError
from repro.utils.rng import SeedSequenceTree


def build_engine(seed=33, n=8, budget=10_000) -> CycleDrivenEngine:
    tree = SeedSequenceTree(seed)
    spec = OptimizationNodeSpec(
        function=get_function("sphere"),
        pso=PSOConfig(particles=4),
        newscast=NewscastConfig(view_size=8),
        coordination=CoordinationConfig(),
        rng_tree=tree,
        evals_per_cycle=4,
        budget_per_node=budget,
    )
    net = Network(rng=tree.rng("network"))
    net.populate(n, factory=lambda node: build_optimization_node(node, spec))
    bootstrap_views(net, tree.rng("bootstrap"))
    return CycleDrivenEngine(
        net, rng=tree.rng("engine"), observers=[GlobalQualityObserver()]
    )


class TestRoundTrip:
    def test_save_load_roundtrip(self, tmp_path):
        engine = build_engine()
        engine.run(10)
        path = tmp_path / "run.ckpt"
        meta = save_checkpoint(engine, path)
        assert meta.cycle == 10
        assert meta.network_size == 8

        restored = load_checkpoint(path)
        assert restored.cycle == 10
        assert restored.network.size == 8
        assert global_best(restored.network) == global_best(engine.network)

    def test_resume_is_bit_identical(self, tmp_path):
        """run(60) == run(30) + checkpoint + restore + run(30)."""
        straight = build_engine()
        straight.run(60)

        engine = build_engine()
        engine.run(30)
        path = tmp_path / "mid.ckpt"
        save_checkpoint(engine, path)
        resumed = load_checkpoint(path)
        resumed.run(30)

        assert resumed.cycle == straight.cycle
        assert global_best(resumed.network) == global_best(straight.network)
        # Per-node state identical, not just the aggregate:
        for nid in range(8):
            a = straight.network.node(nid).protocol("pso").service
            b = resumed.network.node(nid).protocol("pso").service
            assert a.evaluations == b.evaluations
            assert np.array_equal(
                a.swarm.state.positions, b.swarm.state.positions
            )

    def test_original_unaffected_by_resumed_run(self, tmp_path):
        engine = build_engine()
        engine.run(10)
        path = tmp_path / "x.ckpt"
        save_checkpoint(engine, path)
        restored = load_checkpoint(path)
        restored.run(20)
        assert engine.cycle == 10  # untouched

    def test_peek_metadata(self, tmp_path):
        engine = build_engine()
        engine.run(5)
        path = tmp_path / "y.ckpt"
        save_checkpoint(engine, path)
        meta = peek_metadata(path)
        assert meta.cycle == 5
        assert meta.live_count == 8


class TestCorruptionHandling:
    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "bogus.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(SimulationError):
            load_checkpoint(path)

    def test_truncated_payload(self, tmp_path):
        engine = build_engine()
        engine.run(3)
        path = tmp_path / "t.ckpt"
        save_checkpoint(engine, path)
        data = path.read_bytes()
        path.write_bytes(data[:-100])
        with pytest.raises(SimulationError):
            load_checkpoint(path)

    def test_peek_rejects_garbage(self, tmp_path):
        path = tmp_path / "g.ckpt"
        path.write_bytes(b"garbage")
        with pytest.raises(SimulationError):
            peek_metadata(path)


class TestTruncationBoundaries:
    """A file cut at *any* header boundary must fail as truncated.

    Regression: a cut inside the 8-byte payload-length field used to
    decode the partial read as a garbage length and report a
    misleading "N bytes, expected <garbage>" size mismatch.
    """

    @pytest.fixture()
    def checkpoint_bytes(self, tmp_path) -> bytes:
        engine = build_engine()
        engine.run(3)
        path = tmp_path / "full.ckpt"
        save_checkpoint(engine, path)
        return path.read_bytes()

    @staticmethod
    def _length_field_offset(data: bytes) -> int:
        """Offset of the 8-byte payload-length field."""
        import io
        import pickle

        from repro.core.checkpoint import _MAGIC

        buf = io.BytesIO(data)
        buf.read(len(_MAGIC))
        pickle.load(buf)  # the metadata header
        return buf.tell()

    def _expect_truncated(self, tmp_path, data: bytes, cut: int, match: str):
        path = tmp_path / "cut.ckpt"
        path.write_bytes(data[:cut])
        with pytest.raises(SimulationError, match=match):
            load_checkpoint(path)

    def test_cut_inside_magic(self, tmp_path, checkpoint_bytes):
        self._expect_truncated(
            tmp_path, checkpoint_bytes, cut=4, match="not a repro checkpoint"
        )

    def test_cut_inside_metadata(self, tmp_path, checkpoint_bytes):
        from repro.core.checkpoint import _MAGIC

        self._expect_truncated(
            tmp_path, checkpoint_bytes, cut=len(_MAGIC) + 5,
            match="truncated or corrupt checkpoint metadata",
        )

    def test_cut_inside_length_field(self, tmp_path, checkpoint_bytes):
        offset = self._length_field_offset(checkpoint_bytes)
        self._expect_truncated(
            tmp_path, checkpoint_bytes, cut=offset + 4,
            match="truncated checkpoint header",
        )

    def test_cut_inside_payload(self, tmp_path, checkpoint_bytes):
        offset = self._length_field_offset(checkpoint_bytes)
        self._expect_truncated(
            tmp_path, checkpoint_bytes, cut=offset + 8 + 10,
            match="truncated checkpoint",
        )

    def test_peek_metadata_cut_inside_metadata(self, tmp_path, checkpoint_bytes):
        from repro.core.checkpoint import _MAGIC

        path = tmp_path / "cut.ckpt"
        path.write_bytes(checkpoint_bytes[: len(_MAGIC) + 5])
        with pytest.raises(SimulationError, match="metadata"):
            peek_metadata(path)
