"""Tests for the anti-entropy coordination protocol.

The key invariants (module docstring of repro.core.coordination):
monotone non-increase of every node's known optimum, no fabricated
values, epidemic spreading of the best value, idempotence under
duplication/loss.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coordination import CoordinationProtocol
from repro.core.dpso import DistributedPSOService
from repro.core.optimum import Optimum
from repro.functions.suite import Sphere
from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.simulator.transport import LossyTransport, ReliableTransport
from repro.topology.static import StaticTopologyProtocol, complete_graph, ring_lattice
from repro.utils.config import CoordinationConfig, PSOConfig


def build_coordination_network(
    n: int,
    mode: str = "push-pull",
    adjacency: dict | None = None,
    seed: int = 0,
    loss_rate: float = 0.0,
):
    """n nodes with static topology + PSO service + coordination."""
    adjacency = adjacency if adjacency is not None else complete_graph(n)
    rng_master = np.random.default_rng(seed)
    net = Network(rng=np.random.default_rng(seed + 1))
    services = []

    def factory(node):
        nid = node.node_id
        node.attach("topology", StaticTopologyProtocol(adjacency.get(nid, [])))
        service = DistributedPSOService(
            Sphere(4), PSOConfig(particles=2), np.random.default_rng(seed + 10 + nid)
        )
        services.append(service)
        coord = CoordinationProtocol(
            CoordinationConfig(mode=mode),
            service,
            topology_protocol="topology",
            rng=np.random.default_rng(seed + 1000 + nid),
        )
        node.attach("coordination", coord)

    net.populate(n, factory=factory)
    transport = ReliableTransport()
    if loss_rate > 0:
        transport = LossyTransport(transport, loss_rate, np.random.default_rng(99))
    engine = CycleDrivenEngine(net, transport=transport, rng=np.random.default_rng(2))
    return net, engine, services


def seed_optima(services, values):
    """Give each service a known artificial optimum."""
    for service, value in zip(services, values):
        service.local_step()  # establish a finite best first
        service.offer(Optimum(np.full(4, value), value))


class TestPushPull:
    def test_best_value_spreads_to_all(self):
        net, engine, services = build_coordination_network(16)
        seed_optima(services, np.linspace(1.0, 16.0, 16) * 1e-6)
        engine.run(10)  # ≫ log2(16) rounds
        target = min(s.current_best().value for s in services)
        assert all(s.current_best().value == pytest.approx(target) for s in services)

    def test_monotone_nonincreasing_everywhere(self):
        net, engine, services = build_coordination_network(8)
        seed_optima(services, [float(i + 1) for i in range(8)])
        history = [[] for _ in services]
        for _ in range(8):
            engine.run(1)
            for i, s in enumerate(services):
                history[i].append(s.current_best().value)
        for series in history:
            assert all(b <= a + 1e-15 for a, b in zip(series, series[1:]))

    def test_no_fabricated_values(self):
        """Every value present after gossip was some node's optimum."""
        net, engine, services = build_coordination_network(8)
        values = [float(i + 1) * 1e-3 for i in range(8)]
        seed_optima(services, values)
        initial = {s.current_best().value for s in services}
        engine.run(6)
        final = {s.current_best().value for s in services}
        assert final <= initial

    def test_spread_time_logarithmic(self):
        """Epidemic diffusion reaches all of n=64 within ~2·log2(n)+slack
        push-pull rounds (complete topology)."""
        net, engine, services = build_coordination_network(64, seed=5)
        seed_optima(services, [1.0] * 63 + [1e-9])
        rounds = 0
        while rounds < 20:
            engine.run(1)
            rounds += 1
            if all(s.current_best().value == pytest.approx(1e-9) for s in services):
                break
        assert rounds <= 16

    def test_works_over_ring(self):
        """Diffusion also completes on a sparse static ring, just slower."""
        net, engine, services = build_coordination_network(
            12, adjacency=ring_lattice(12)
        )
        seed_optima(services, [1.0] * 11 + [1e-9])
        engine.run(40)
        assert all(s.current_best().value == pytest.approx(1e-9) for s in services)


class TestModes:
    @pytest.mark.parametrize("mode", ["push", "pull", "push-pull"])
    def test_all_modes_eventually_spread(self, mode):
        net, engine, services = build_coordination_network(16, mode=mode)
        seed_optima(services, [1.0] * 15 + [1e-9])
        engine.run(30)
        reached = sum(
            s.current_best().value == pytest.approx(1e-9) for s in services
        )
        assert reached == 16

    def test_push_never_replies(self):
        net, engine, services = build_coordination_network(8, mode="push")
        seed_optima(services, [float(i + 1) for i in range(8)])
        engine.run(5)
        # In push mode messages = exchanges (no replies ever).
        total_sent = sum(
            net.node(i).protocol("coordination").messages_sent for i in range(8)
        )
        total_exchanges = sum(
            net.node(i).protocol("coordination").exchanges_initiated for i in range(8)
        )
        assert total_sent == total_exchanges

    def test_push_pull_replies_when_receiver_better(self):
        net, engine, services = build_coordination_network(2, mode="push-pull")
        seed_optima(services, [1.0, 1e-9])
        engine.run(2)
        # Node 0 must have adopted node 1's optimum, whichever
        # direction initiated (offer or reply path).
        assert services[0].current_best().value == pytest.approx(1e-9)

    def test_unknown_payload_rejected(self):
        net, engine, services = build_coordination_network(2)
        coord = net.node(0).protocol("coordination")
        from repro.simulator.transport import Message

        with pytest.raises(ValueError):
            coord.deliver(net.node(0), engine, Message(1, 0, "coordination", ("bogus", None)))


class TestRobustness:
    def test_lossy_transport_only_slows_spreading(self):
        """Paper Sec. 3.3.4: losses slow diffusion but cannot corrupt
        it — with 30% loss the best value still reaches everyone."""
        net, engine, services = build_coordination_network(16, loss_rate=0.3, seed=8)
        seed_optima(services, [1.0] * 15 + [1e-9])
        engine.run(40)
        assert all(s.current_best().value == pytest.approx(1e-9) for s in services)

    def test_exchange_with_dead_peer_is_lost_quietly(self):
        net, engine, services = build_coordination_network(4)
        seed_optima(services, [1.0, 2.0, 3.0, 4.0])
        net.crash(1)
        engine.run(5)  # must not raise
        live_best = [
            net.node(i).protocol("coordination").optimizer.current_best().value
            for i in (0, 2, 3)
        ]
        assert all(v == pytest.approx(1.0) for v in live_best)

    def test_node_with_empty_view_skips(self):
        net, engine, services = build_coordination_network(
            2, adjacency={0: [], 1: []}
        )
        seed_optima(services, [1.0, 2.0])
        engine.run(3)
        # No partners -> no exchanges, no crash, optima unchanged.
        assert services[0].current_best().value == pytest.approx(1.0)
        assert services[1].current_best().value == pytest.approx(2.0)

    def test_duplicate_delivery_idempotent(self):
        net, engine, services = build_coordination_network(2)
        seed_optima(services, [1.0, 2.0])
        from repro.simulator.transport import Message

        best = services[0].current_best()
        msg = Message(0, 1, "coordination", ("offer", best))
        coord1 = net.node(1).protocol("coordination")
        coord1.deliver(net.node(1), engine, msg)
        v1 = services[1].current_best().value
        coord1.deliver(net.node(1), engine, msg)  # duplicate
        assert services[1].current_best().value == v1
