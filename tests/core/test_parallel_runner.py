"""Tests for process-parallel repetition execution."""

from __future__ import annotations

import pytest

from repro.core.runner import run_experiment
from repro.utils.config import ExperimentConfig


def make_config(**overrides) -> ExperimentConfig:
    base = dict(
        function="sphere",
        nodes=4,
        particles_per_node=4,
        total_evaluations=800,
        gossip_cycle=4,
        repetitions=4,
        seed=50,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestParallelRuns:
    def test_parallel_equals_sequential(self):
        seq = run_experiment(make_config(), workers=1)
        par = run_experiment(make_config(), workers=2)
        assert [r.best_value for r in par.runs] == [r.best_value for r in seq.runs]
        assert [r.total_evaluations for r in par.runs] == [
            r.total_evaluations for r in seq.runs
        ]

    def test_progress_called_in_order(self):
        seen = []
        run_experiment(
            make_config(repetitions=3),
            workers=2,
            progress=lambda i, r: seen.append(i),
        )
        assert seen == [0, 1, 2]

    def test_single_repetition_stays_inline(self):
        result = run_experiment(make_config(repetitions=1), workers=4)
        assert len(result.runs) == 1

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            run_experiment(make_config(), workers=0)

    def test_topology_factory_rejected_in_parallel(self):
        with pytest.raises(ValueError):
            run_experiment(
                make_config(), workers=2, topology_factory=lambda nid: None
            )


class TestDeploymentCli:
    def test_cli_runs(self, capsys):
        from repro.deployment.__main__ import main

        code = main(
            ["--function", "sphere", "--nodes", "6", "--budget", "200",
             "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "solution quality" in out
        assert "stop reason         : budget" in out

    def test_cli_threshold(self, capsys):
        from repro.deployment.__main__ import main

        code = main(
            ["--nodes", "8", "--budget", "50000", "--threshold", "1e-2",
             "--seed", "3"]
        )
        assert code == 0
        assert "threshold reached" in capsys.readouterr().out
