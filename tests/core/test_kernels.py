"""Kernel backend registry, workspace, and per-backend contracts.

The contract classes parametrize over every *importable* backend and
compare it against the NumPy oracle: float kernels must be
bit-identical (the strict-RNG reproducibility guarantee), the integer
merge must match exactly, and every kernel's workspace path must equal
its allocating path.  On machines without numba only the NumPy backend
runs; the CI ``kernel-backends`` job installs numba and runs the same
suite against both.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro.core.kernels as kernels
from repro.core.kernels import (
    BackendUnavailable,
    KernelBackend,
    Workspace,
    available_backends,
    get_backend,
    register_backend,
)
from repro.core.kernels.numpy_backend import NumpyKernelBackend
from repro.topology.array_views import merge_candidates as oracle_merge
from repro.utils.exceptions import ConfigurationError

BACKENDS = available_backends()


@pytest.fixture(params=BACKENDS)
def backend(request):
    return get_backend(request.param)


# -- registry ------------------------------------------------------------------


class TestRegistry:
    def test_default_is_numpy(self):
        b = get_backend()
        assert isinstance(b, NumpyKernelBackend)
        assert b.name == "numpy"

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_ready_instance_passes_through(self):
        b = NumpyKernelBackend()
        assert get_backend(b) is b

    def test_unknown_name_raises_naming_registered(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            get_backend("cuda")

    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_unavailable_backend_warns_once_then_falls_back(self):
        class Broken(KernelBackend):  # pragma: no cover - never built
            pass

        def factory():
            raise BackendUnavailable("dependency missing")

        register_backend("_test_broken", factory)
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                first = get_backend("_test_broken")
                second = get_backend("_test_broken")
            assert isinstance(first, NumpyKernelBackend)
            assert second is first
            runtime = [w for w in caught
                       if issubclass(w.category, RuntimeWarning)]
            assert len(runtime) == 1, "fallback must warn exactly once"
            assert "dependency missing" in str(runtime[0].message)
        finally:
            kernels._FACTORIES.pop("_test_broken", None)
            kernels._WARNED.discard("_test_broken")

    def test_unavailable_backend_raises_without_fallback(self):
        def factory():
            raise BackendUnavailable("nope")

        register_backend("_test_strict", factory)
        try:
            with pytest.raises(BackendUnavailable, match="nope"):
                get_backend("_test_strict", fallback=False)
        finally:
            kernels._FACTORIES.pop("_test_strict", None)
            kernels._WARNED.discard("_test_strict")


# -- workspace -----------------------------------------------------------------


class TestWorkspace:
    def test_take_reuses_buffer(self):
        ws = Workspace()
        a = ws.take("x", (8, 3))
        assert a.shape == (8, 3) and ws.allocations == 1
        b = ws.take("x", (8, 3))
        assert b.base is a.base or b is a
        assert ws.allocations == 1

    def test_smaller_lead_is_a_view(self):
        ws = Workspace()
        ws.take("x", (10, 4))
        small = ws.take("x", (6, 4))
        assert small.shape == (6, 4)
        assert ws.allocations == 1

    def test_lead_growth_is_geometric(self):
        ws = Workspace()
        ws.take("x", (10,))
        grown = ws.take("x", (11,))
        assert grown.shape == (11,)
        assert ws.allocations == 2
        assert ws.take("x", (20,)).shape == (20,)  # within 2*10 capacity
        assert ws.allocations == 2

    def test_trailing_or_dtype_change_reallocates(self):
        ws = Workspace()
        ws.take("x", (4, 2))
        ws.take("x", (4, 3))
        assert ws.allocations == 2
        ws.take("x", (4, 3), np.int64)
        assert ws.allocations == 3

    def test_replace_reseeds_named_buffer(self):
        ws = Workspace()
        ws.take("x", (4,))
        mine = np.arange(4, dtype=np.float64)
        ws.replace("x", mine)
        out = ws.take("x", (4,))
        assert out.base is mine or out is mine
        assert ws.allocations == 1  # replace is not an allocation

    def test_diagnostics(self):
        ws = Workspace()
        ws.take("a", (2, 2))
        ws.take("b", (3,), np.int64)
        assert set(ws.names()) == {"a", "b"}
        assert ws.nbytes() == 4 * 8 + 3 * 8


# -- per-backend contracts vs the NumPy oracle ---------------------------------


def _update_inputs(seed, m=7, k=5, d=4):
    rng = np.random.default_rng(seed)
    pos = rng.normal(size=(m, k, d))
    vel = rng.normal(size=(m, k, d))
    pb = rng.normal(size=(m, k, d))
    gbest = rng.normal(size=(m, 1, d))
    r1 = rng.random((m, k, d))
    r2 = rng.random((m, k, d))
    return pos, vel, pb, gbest, r1, r2


def _expression_oracle(pos, vel, pb, gbest, r1, r2, inertia, c1, c2,
                       vmax=None, lower=None, upper=None):
    """The documented update, as the pre-PR engine expressed it."""
    new_vel = (inertia * vel + (c1 * r1) * (pb - pos)
               + (c2 * r2) * (gbest - pos))
    if vmax is not None:
        new_vel = np.clip(new_vel, -vmax, vmax)
    new_pos = pos + new_vel
    if lower is not None:
        new_pos = np.clip(new_pos, lower, upper)
    return new_vel, new_pos


class TestFusedUpdateContract:
    @pytest.mark.parametrize("bounds", ["none", "vmax", "vmax+box"])
    def test_bitwise_equal_to_expression_oracle(self, backend, bounds):
        pos, vel, pb, gbest, r1, r2 = _update_inputs(3)
        kw = {}
        if bounds != "none":
            kw["vmax"] = np.full((1, 1, pos.shape[2]), 0.7)
        if bounds == "vmax+box":
            kw["lower"], kw["upper"] = -1.5, 1.5
        want_vel, want_pos = _expression_oracle(
            pos, vel, pb, gbest, r1, r2, 0.72, 1.49, 1.51, **kw
        )
        got_vel, got_pos = backend.fused_pso_update(
            pos, vel, pb, gbest, r1, r2, 0.72, 1.49, 1.51, **kw
        )
        # Bit identity, not closeness: the strict-RNG contract.
        np.testing.assert_array_equal(got_vel, want_vel, strict=True)
        np.testing.assert_array_equal(got_pos, want_pos, strict=True)

    def test_workspace_path_bitwise_equals_allocating_path(self, backend):
        pos, vel, pb, gbest, r1, r2 = _update_inputs(4)
        args = (pos, vel, pb, gbest, r1, r2, 0.9, 2.0, 2.0)
        plain_vel, plain_pos = backend.fused_pso_update(*args, vmax=0.5)
        ws = Workspace()
        out_vel = ws.take("v", pos.shape)
        out_pos = ws.take("p", pos.shape)
        ws_vel, ws_pos = backend.fused_pso_update(
            *args, vmax=0.5, out_vel=out_vel, out_pos=out_pos, ws=ws
        )
        np.testing.assert_array_equal(ws_vel, plain_vel, strict=True)
        np.testing.assert_array_equal(ws_pos, plain_pos, strict=True)
        assert ws_vel is out_vel and ws_pos is out_pos

    def test_inputs_not_mutated(self, backend):
        pos, vel, pb, gbest, r1, r2 = _update_inputs(5)
        copies = [a.copy() for a in (pos, vel, pb, gbest, r1, r2)]
        backend.fused_pso_update(pos, vel, pb, gbest, r1, r2, 0.7, 1.5, 1.5,
                                 vmax=1.0, lower=-2.0, upper=2.0)
        for arr, ref in zip((pos, vel, pb, gbest, r1, r2), copies):
            np.testing.assert_array_equal(arr, ref)


class TestPbestFoldContract:
    def test_matches_where_semantics(self, backend):
        rng = np.random.default_rng(6)
        m, k, d = 6, 4, 3
        values = rng.random((m, k))
        pbv = rng.random((m, k))
        pb = rng.normal(size=(m, k, d))
        pos = rng.normal(size=(m, k, d))
        participating = rng.random((m, k)) < 0.6
        improved = (values < pbv) & participating
        want_pbv = np.where(improved, values, pbv)
        want_pb = np.where(improved[:, :, None], pos, pb)
        got_pbv, got_pb = backend.pbest_fold(
            values, pbv, pb, pos, participating
        )
        np.testing.assert_array_equal(got_pbv, want_pbv, strict=True)
        np.testing.assert_array_equal(got_pb, want_pb, strict=True)

    def test_workspace_path_equals_plain(self, backend):
        rng = np.random.default_rng(7)
        m, k, d = 5, 3, 2
        values, pbv = rng.random((m, k)), rng.random((m, k))
        pb, pos = rng.normal(size=(m, k, d)), rng.normal(size=(m, k, d))
        plain = backend.pbest_fold(values, pbv, pb, pos)
        ws = Workspace()
        out = backend.pbest_fold(
            values, pbv, pb, pos,
            out_pbv=ws.take("pbv", (m, k)), out_pb=ws.take("pb", (m, k, d)),
            ws=ws,
        )
        np.testing.assert_array_equal(out[0], plain[0], strict=True)
        np.testing.assert_array_equal(out[1], plain[1], strict=True)


class TestMergeContract:
    def _candidates(self, seed, m=40, w=17, id_pool=25):
        rng = np.random.default_rng(seed)
        ids = rng.integers(-1, id_pool, size=(m, w)).astype(np.int64)
        ts = rng.integers(0, 1 << 20, size=(m, w)).astype(np.int64)
        self_ids = rng.integers(0, id_pool, size=m).astype(np.int64)
        return ids, ts, self_ids

    @pytest.mark.parametrize("capacity", [1, 5, 17, 30])
    def test_matches_oracle_merge(self, backend, capacity):
        ids, ts, self_ids = self._candidates(11)
        want_ids, want_ts = oracle_merge(ids, ts, self_ids, capacity)
        got_ids, got_ts = backend.merge_candidates(ids, ts, self_ids, capacity)
        np.testing.assert_array_equal(got_ids, want_ids)
        np.testing.assert_array_equal(got_ts, want_ts)

    def test_workspace_path_equals_plain(self, backend):
        ids, ts, self_ids = self._candidates(12)
        plain = backend.merge_candidates(ids, ts, self_ids, 8)
        ws = Workspace()
        wsed = backend.merge_candidates(ids, ts, self_ids, 8, ws=ws)
        np.testing.assert_array_equal(wsed[0], plain[0])
        np.testing.assert_array_equal(wsed[1], plain[1])
        # Steady state: a second call with the same shapes allocates
        # nothing new.
        before = ws.allocations
        backend.merge_candidates(ids, ts, self_ids, 8, ws=ws)
        assert ws.allocations == before

    def test_duplicate_ids_keep_freshest(self, backend):
        ids = np.array([[3, 3, 5, -1, 3]], dtype=np.int64)
        ts = np.array([[10, 40, 7, 99, 20]], dtype=np.int64)
        self_ids = np.array([9], dtype=np.int64)
        out_ids, out_ts = backend.merge_candidates(ids, ts, self_ids, 4)
        assert out_ids[0, 0] == 3 and out_ts[0, 0] == 40
        assert out_ids[0, 1] == 5 and out_ts[0, 1] == 7
        assert (out_ids[0, 2:] == -1).all()

    def test_self_is_dropped(self, backend):
        ids = np.array([[9, 2]], dtype=np.int64)
        ts = np.array([[100, 1]], dtype=np.int64)
        out_ids, _ = backend.merge_candidates(
            ids, ts, np.array([9], dtype=np.int64), 2
        )
        assert 9 not in out_ids


class TestScatterMinFoldContract:
    def test_matches_sequential_fold(self, backend):
        rng = np.random.default_rng(21)
        n, d = 30, 4
        senders = np.flatnonzero(rng.random(n) < 0.7)
        targets = rng.integers(0, n, size=n)
        # Distinct values: ties would make "best sender" ambiguous.
        src_val = rng.permutation(n).astype(float)
        src_pos = rng.normal(size=(n, d))
        cmp_val = rng.permutation(n).astype(float) + 0.5
        out_val = cmp_val.copy()
        out_pos = np.zeros((n, d))

        want_val = cmp_val.copy()
        want_pos = out_pos.copy()
        want_adoptions = 0
        for t in np.unique(targets[senders]):
            offers = senders[targets[senders] == t]
            best = offers[np.argmin(src_val[offers])]
            if src_val[best] < cmp_val[t]:
                want_val[t] = src_val[best]
                want_pos[t] = src_pos[best]
                want_adoptions += 1

        adopted = backend.scatter_min_fold(
            senders, targets, src_val, src_pos, cmp_val, out_val, out_pos
        )
        assert adopted == want_adoptions
        np.testing.assert_array_equal(out_val, want_val)
        np.testing.assert_array_equal(out_pos, want_pos)

    def test_empty_senders_is_noop(self, backend):
        out_val = np.array([1.0, 2.0])
        out_pos = np.zeros((2, 3))
        adopted = backend.scatter_min_fold(
            np.empty(0, dtype=np.int64), np.array([0, 1]),
            np.array([0.0, 0.0]), np.zeros((2, 3)),
            out_val.copy(), out_val, out_pos,
        )
        assert adopted == 0
        np.testing.assert_array_equal(out_val, [1.0, 2.0])


class TestBatchEvalContract:
    def test_homogeneous_matches_function_batch(self, backend):
        from repro.functions.base import get_function

        fn = get_function("sphere")
        rng = np.random.default_rng(30)
        pos = rng.normal(size=(6, 4, fn.dimension))
        want = fn.batch(pos.reshape(-1, fn.dimension)).reshape(6, 4)
        got = backend.batch_eval(
            [fn], None, np.arange(6), pos
        )
        np.testing.assert_array_equal(got, want, strict=True)

    def test_grouped_dispatch_routes_by_node_group(self, backend):
        from repro.functions.base import get_function

        sphere = get_function("sphere")
        rastrigin = get_function("rastrigin")
        node_group = np.array([0, 1, 0, 1], dtype=np.int64)
        live = np.arange(4)
        rng = np.random.default_rng(31)
        pos = rng.normal(size=(4, 3, sphere.dimension))
        got = backend.batch_eval([sphere, rastrigin], node_group, live, pos)
        for row, fn in zip(range(4), (sphere, rastrigin, sphere, rastrigin)):
            want = fn.batch(pos[row])
            np.testing.assert_array_equal(got[row], want)

    def test_out_buffer_is_used(self, backend):
        from repro.functions.base import get_function

        fn = get_function("sphere")
        pos = np.random.default_rng(32).normal(size=(3, 2, fn.dimension))
        out = np.empty((3, 2))
        got = backend.batch_eval([fn], None, np.arange(3), pos, out=out)
        assert got is out


# -- double-buffer handoff -----------------------------------------------------


class TestExchangeArrays:
    def _soa(self, n, k, d, spare=0):
        from repro.pso.state import SwarmState, stack_states

        rng = np.random.default_rng(40)
        states = [
            SwarmState(
                positions=rng.normal(size=(k, d)),
                velocities=rng.normal(size=(k, d)),
                pbest_positions=rng.normal(size=(k, d)),
                pbest_values=rng.random(k),
                best_position=rng.normal(size=d),
                best_value=0.0,
            )
            for _ in range(n + spare)
        ]
        soa = stack_states(states)
        return soa

    def test_full_capacity_adopts_by_reference_and_returns_old(self):
        soa = self._soa(3, 2, 4)
        old_pos = soa._positions
        new = [np.zeros((3, 2, 4)), np.ones((3, 2, 4)),
               np.zeros((3, 2, 4)), np.zeros((3, 2))]
        displaced = soa.exchange_arrays(*new)
        assert displaced is not None
        assert displaced[0] is old_pos
        assert soa._positions is new[0]

    def test_spare_capacity_copies_and_returns_none(self):
        soa = self._soa(3, 2, 4)
        soa.reserve(8)  # churn headroom
        new = [np.full((3, 2, 4), 5.0), np.zeros((3, 2, 4)),
               np.zeros((3, 2, 4)), np.zeros((3, 2))]
        assert soa.exchange_arrays(*new) is None
        np.testing.assert_array_equal(soa.positions, new[0])
        assert soa._positions is not new[0]
