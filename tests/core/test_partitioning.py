"""Tests for the partitioned coordination strategy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import global_best, total_evaluations
from repro.core.node import OptimizationNodeSpec, build_optimization_node
from repro.core.optimum import Optimum
from repro.core.partitioning import ZonePSOService, partitioned_pso_factory
from repro.functions.base import get_function
from repro.functions.subdomain import SubdomainFunction, partition_box
from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.topology.newscast import bootstrap_views
from repro.utils.config import CoordinationConfig, NewscastConfig, PSOConfig
from repro.utils.rng import SeedSequenceTree


def make_zone_service(seed=0):
    f = get_function("sphere", dimension=4)
    zone = SubdomainFunction(f, np.full(4, 0.0), np.full(4, 100.0))
    return ZonePSOService(zone, PSOConfig(particles=4), np.random.default_rng(seed))


class TestZonePSOService:
    def test_particles_confined_to_zone(self):
        service = make_zone_service()
        for _ in range(200):
            service.local_step()
        positions = service.swarm.state.positions
        assert np.all(positions >= 0.0 - 1e-9)
        assert np.all(positions <= 100.0 + 1e-9)

    def test_foreign_optimum_reported_not_steering(self):
        service = make_zone_service()
        service.local_step()
        foreign = Optimum(np.full(4, -50.0), 1e-20)  # outside the zone
        assert service.offer(foreign)
        assert service.current_best().value == 1e-20
        # The swarm's own attractor is untouched (still the zone best).
        assert service.swarm.best_value > 1e-20
        # And after more steps particles are still in the zone.
        for _ in range(100):
            service.local_step()
        assert np.all(service.swarm.state.positions >= -1e-9)

    def test_offer_worse_rejected(self):
        service = make_zone_service()
        service.local_step()
        base = service.current_best().value
        assert not service.offer(Optimum(np.zeros(4), base + 1.0))

    def test_zone_best_separate_from_global(self):
        service = make_zone_service()
        service.local_step()
        service.offer(Optimum(np.full(4, -50.0), 1e-20))
        assert service.zone_best.value > 1e-20
        assert service.current_best().value == 1e-20

    def test_evaluations_counted(self):
        service = make_zone_service()
        for _ in range(25):
            service.local_step()
        assert service.evaluations == 25


def build_partitioned_network(function_name="schwefel", n=8, budget=1000, seed=0):
    tree = SeedSequenceTree(seed)
    function = get_function(function_name)
    factory = partitioned_pso_factory(
        function, n, PSOConfig(particles=8), rng_for=lambda nid: tree.rng("zone", nid)
    )
    spec = OptimizationNodeSpec(
        function=function,
        pso=PSOConfig(particles=8),
        newscast=NewscastConfig(view_size=8),
        coordination=CoordinationConfig(),
        rng_tree=tree,
        evals_per_cycle=8,
        budget_per_node=budget,
        optimizer_factory=factory,
    )
    net = Network(rng=tree.rng("network"))
    net.populate(n, factory=lambda node: build_optimization_node(node, spec))
    bootstrap_views(net, tree.rng("bootstrap"))
    return net, CycleDrivenEngine(net, rng=tree.rng("engine"))


class TestPartitionedNetwork:
    def test_full_budget_spent(self):
        net, engine = build_partitioned_network(n=8, budget=400)
        engine.run(51)
        assert total_evaluations(net) == 8 * 400

    def test_every_zone_explored(self):
        net, engine = build_partitioned_network(n=8, budget=400)
        engine.run(51)
        f = get_function("schwefel")
        zones = partition_box(f.lower, f.upper, 8)
        for nid in range(8):
            service = net.node(nid).protocol("pso").service
            lo, hi = zones[nid]
            pos = service.swarm.state.positions
            assert np.all(pos >= lo - 1e-9)
            assert np.all(pos <= hi + 1e-9)

    def test_best_report_diffuses(self):
        net, engine = build_partitioned_network(n=8, budget=400)
        engine.run(51)
        engine.run(20)  # extra gossip after budget exhaustion
        bests = [
            net.node(nid).protocol("pso").service.current_best().value
            for nid in net.live_ids()
        ]
        assert max(bests) - min(bests) < 1e-12

    def test_partitioning_covers_deceptive_optima(self):
        """On Schwefel (optimum near the domain corner) the zone
        containing the corner is guaranteed dedicated attention —
        partitioned search must land a solid result."""
        net, engine = build_partitioned_network("schwefel", n=8, budget=2000)
        engine.run(251)
        f = get_function("schwefel")
        random_level = float(
            np.median(f.batch(f.sample_uniform(np.random.default_rng(0), 2000)))
        )
        assert global_best(net) < random_level / 4

    def test_joiner_reuses_zone(self):
        f = get_function("sphere")
        factory = partitioned_pso_factory(
            f, 4, PSOConfig(particles=4),
            rng_for=lambda nid: np.random.default_rng(nid),
        )
        zones = partition_box(f.lower, f.upper, 4)
        service = factory(6)  # joiner id 6 -> zone 6 % 4 = 2
        lo, hi = zones[2]
        pos = service.swarm.state.positions
        assert np.all(pos >= lo - 1e-9)
        assert np.all(pos <= hi + 1e-9)

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            partitioned_pso_factory(
                get_function("sphere"), 0, PSOConfig(), lambda nid: None
            )
