"""Fast/reference engine equivalence: the fastpath contract.

Three tiers, matching the guarantees documented in
:mod:`repro.core.fastpath`:

* **bit-identity** where gossip cannot reorder information flow
  mid-cycle (``n = 1`` through the public API; any ``n`` with gossip
  disabled) — trajectories, per-node SoA rows, and RunResult fields
  must match the reference engine exactly at ``r = k``;
* **statistical equivalence** everywhere else (``r ≠ k``, churn
  on/off, every topology sampler) — final-quality distributions must
  overlap;
* **schema/semantics preservation** — budgets, thresholds, tallies,
  parallel workers behave like the reference engine's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fastpath import FastEngine, run_single_fast
from repro.core.runner import run_experiment, run_single
from repro.pso.swarm import Swarm
from repro.topology.sampler import PeerSampler
from repro.topology.static import StaticTopologyProtocol, ring_lattice
from repro.utils.config import (
    ChurnConfig,
    CoordinationConfig,
    ExperimentConfig,
    PSOConfig,
)
from repro.utils.rng import SeedSequenceTree


class IsolatedSampler(PeerSampler):
    """A topology where nobody knows anybody: gossip never fires."""

    def sample_peer(self, node, rng):
        return None

    def known_peers(self, node):
        return []


def isolated_topology(nid):
    return ("topology", IsolatedSampler())


def small_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        function="sphere",
        nodes=12,
        particles_per_node=8,
        total_evaluations=12 * 8 * 10,
        gossip_cycle=8,
        seed=17,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def history_tuples(result):
    return [(h.cycle, h.evaluations, h.best_value) for h in result.history]


class TestTrajectoryIdentity:
    """Same-seed bit-identity of the fast path at r = k."""

    def test_single_node_identical_through_public_api(self):
        cfg = small_config(nodes=1, total_evaluations=16 * 25,
                           particles_per_node=16, gossip_cycle=16)
        ref = run_single(cfg, record_history=True)
        fast = run_single(cfg, record_history=True, engine="fast")
        assert ref.best_value == fast.best_value
        assert ref.cycles == fast.cycles
        assert ref.stop_reason == fast.stop_reason
        assert ref.total_evaluations == fast.total_evaluations
        assert history_tuples(ref) == history_tuples(fast)

    def test_multinode_gossip_off_identical(self):
        cfg = small_config(function="rosenbrock", nodes=10)
        ref = run_single(cfg, record_history=True,
                         topology_factory=isolated_topology)
        fast = run_single_fast(cfg, record_history=True, gossip=False)
        assert ref.best_value == fast.best_value
        assert history_tuples(ref) == history_tuples(fast)
        assert ref.node_best_spread == fast.node_best_spread
        assert ref.total_evaluations == fast.total_evaluations

    def test_soa_rows_match_reference_swarms_bitwise(self):
        """Every node's SoA row equals an isolated reference Swarm.

        This pins the strongest claim: the batched kernel consumes each
        node's private stream exactly like Swarm.step_cycle, so state
        — not just summary numbers — is bit-identical at r = k.
        """
        cfg = small_config(nodes=6, particles_per_node=5, gossip_cycle=5,
                           total_evaluations=6 * 5 * 7)
        cycles = 7
        engine = FastEngine(cfg, gossip=False)
        engine.run(cycles)

        tree = SeedSequenceTree(cfg.seed).subtree("rep", 0)
        from repro.functions.base import get_function

        function = get_function(cfg.function)
        for nid in range(cfg.nodes):
            swarm = Swarm(function, cfg.pso, tree.rng("node", nid, "pso"))
            for _ in range(cycles):
                swarm.step_cycle()
            row = engine.soa.node_state(nid)
            assert np.array_equal(row.positions, swarm.state.positions)
            assert np.array_equal(row.velocities, swarm.state.velocities)
            assert np.array_equal(row.pbest_positions, swarm.state.pbest_positions)
            assert np.array_equal(row.pbest_values, swarm.state.pbest_values)
            assert row.best_value == swarm.state.best_value
            assert np.array_equal(row.best_position, swarm.state.best_position)
            assert row.evaluations == swarm.state.evaluations

    def test_repetitions_are_independent_streams(self):
        cfg = small_config(nodes=1, particles_per_node=8, gossip_cycle=8,
                           total_evaluations=8 * 10)
        a = run_single(cfg, repetition=0, engine="fast")
        b = run_single(cfg, repetition=1, engine="fast")
        assert a.best_value != b.best_value
        # And each repetition matches its reference twin.
        assert a.best_value == run_single(cfg, repetition=0).best_value
        assert b.best_value == run_single(cfg, repetition=1).best_value


class TestStatisticalEquivalence:
    """Fast and reference engines draw from the same outcome
    distribution even where trajectories lawfully diverge."""

    REPS = 6

    def _qualities(self, cfg, engine, **kwargs):
        out = []
        for rep in range(self.REPS):
            out.append(
                run_single(cfg, repetition=rep, engine=engine, **kwargs).quality
            )
        return np.asarray(out)

    def _assert_overlap(self, ref, fast):
        """Loose two-sided check: ranges overlap and the log-mean gap
        is far smaller than the spread of qualities PSO produces."""
        assert fast.min() <= ref.max() and ref.min() <= fast.max()
        log_ref = np.log10(np.maximum(ref, 1e-300)).mean()
        log_fast = np.log10(np.maximum(fast, 1e-300)).mean()
        assert abs(log_ref - log_fast) < 1.5

    def test_gossip_r_equals_k(self):
        cfg = small_config(nodes=16, total_evaluations=16 * 8 * 30, seed=23)
        self._assert_overlap(
            self._qualities(cfg, "reference"), self._qualities(cfg, "fast")
        )

    def test_r_not_equal_k(self):
        cfg = small_config(nodes=16, gossip_cycle=5,
                           total_evaluations=16 * 8 * 30, seed=29)
        self._assert_overlap(
            self._qualities(cfg, "reference"), self._qualities(cfg, "fast")
        )

    def test_churn_on(self):
        cfg = small_config(
            nodes=24,
            total_evaluations=24 * 8 * 25,
            seed=31,
            churn=ChurnConfig(crash_rate=0.02, join_rate=0.02, min_population=6),
        )
        self._assert_overlap(
            self._qualities(cfg, "reference"), self._qualities(cfg, "fast")
        )

    @pytest.mark.parametrize("mode", ["push", "pull", "push-pull"])
    def test_coordination_modes(self, mode):
        cfg = small_config(
            nodes=16,
            total_evaluations=16 * 8 * 20,
            seed=37,
            coordination=CoordinationConfig(mode=mode),
        )
        self._assert_overlap(
            self._qualities(cfg, "reference"), self._qualities(cfg, "fast")
        )

    def test_against_ring_topology_sampler(self):
        """The oracle sampler matches NEWSCAST statistically; even a
        constrained static ring lands in the same quality regime."""
        cfg = small_config(nodes=16, total_evaluations=16 * 8 * 20, seed=41)
        adjacency = ring_lattice(cfg.nodes, 2)
        ring = lambda nid: (
            StaticTopologyProtocol.PROTOCOL_NAME,
            StaticTopologyProtocol(adjacency.get(nid, [])),
        )
        ref = self._qualities(cfg, "reference", topology_factory=ring)
        fast = self._qualities(cfg, "fast")
        self._assert_overlap(ref, fast)


class TestRunSemantics:
    """RunResult schema and stop semantics carry over."""

    def test_budget_spent_exactly_with_partial_final_cycle(self):
        # budget 30 per node, r = 8: cycles spend 8+8+8+6.
        cfg = small_config(nodes=5, total_evaluations=5 * 30)
        result = run_single(cfg, engine="fast")
        assert result.stop_reason == "budget"
        assert result.total_evaluations == 5 * 30
        assert result.cycles == 4

    def test_threshold_stop_records_times(self):
        cfg = small_config(
            nodes=8,
            total_evaluations=8 * 8 * 50,
            quality_threshold=1e4,  # sphere starts ~1e4-1e5: trips early
            seed=43,
        )
        result = run_single(cfg, engine="fast")
        assert result.stop_reason == "threshold"
        assert result.reached_threshold
        assert result.threshold_local_time == result.cycles * cfg.gossip_cycle
        assert result.threshold_total_evaluations is not None

    def test_history_monotone_and_messages_tallied(self):
        cfg = small_config(nodes=16, total_evaluations=16 * 8 * 10)
        result = run_single(cfg, engine="fast", record_history=True)
        bests = [h.best_value for h in result.history]
        assert all(b2 <= b1 for b1, b2 in zip(bests, bests[1:]))
        tally = result.messages
        assert tally.coordination_messages > 0
        assert 0 < tally.coordination_adoptions <= tally.coordination_messages
        # The fast engine simulates real NEWSCAST view exchanges now:
        # one initiated exchange per live node per cycle.
        assert tally.newscast_exchanges == cfg.nodes * result.cycles
        assert tally.transport_sent == tally.coordination_messages

    def test_oracle_topology_reports_no_view_traffic(self):
        cfg = small_config(nodes=16, total_evaluations=16 * 8 * 10)
        result = run_single_fast(cfg, topology="oracle")
        assert result.messages.newscast_exchanges == 0
        assert result.messages.coordination_messages > 0

    def test_gossip_tightens_consensus(self):
        cfg = small_config(nodes=24, total_evaluations=24 * 8 * 20, seed=47)
        with_gossip = run_single_fast(cfg)
        without = run_single_fast(cfg, gossip=False)
        assert with_gossip.node_best_spread < without.node_best_spread

    def test_churn_grows_and_shrinks_population(self):
        cfg = small_config(
            nodes=20,
            total_evaluations=20 * 8 * 30,
            churn=ChurnConfig(crash_rate=0.05, join_rate=0.05, min_population=4),
            seed=53,
        )
        engine = FastEngine(cfg)
        engine.run(30)
        assert engine.crashes > 0
        assert engine.joins > 0
        # Joins reuse crashed nodes' slots before growing the arrays,
        # so slot count stays within [peak live, nodes + joins].
        assert engine.live_count <= engine.soa.n <= cfg.nodes + engine.joins
        assert engine.live_count == cfg.nodes + engine.joins - engine.crashes
        # Retired evaluations from recycled slots stay accounted for.
        assert engine.total_evaluations() > 0

    def test_min_population_floor_respected(self):
        cfg = small_config(
            nodes=6,
            total_evaluations=6 * 8 * 40,
            churn=ChurnConfig(crash_rate=0.5, min_population=3),
            seed=59,
        )
        engine = FastEngine(cfg)
        engine.run(40)
        assert engine.live_count >= 3


class TestEngineSelectionAPI:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_single(small_config(), engine="warp")

    def test_fast_rejects_topology_factory(self):
        with pytest.raises(ValueError, match="topology factories"):
            run_single(
                small_config(), engine="fast", topology_factory=isolated_topology
            )

    def test_run_experiment_fast_parallel_matches_sequential(self):
        cfg = small_config(nodes=8, repetitions=3,
                           total_evaluations=8 * 8 * 8, seed=61)
        seq = run_experiment(cfg, engine="fast")
        par = run_experiment(cfg, engine="fast", workers=2)
        assert [r.best_value for r in seq.runs] == [r.best_value for r in par.runs]
        assert [r.total_evaluations for r in seq.runs] == [
            r.total_evaluations for r in par.runs
        ]


class TestTopologyProviders:
    """The fast engine runs every named overlay (PR 3 tentpole)."""

    @pytest.mark.parametrize(
        "topology", ["newscast", "cyclon", "ring", "kregular", "star", "oracle"]
    )
    def test_runs_and_finishes_budget(self, topology):
        cfg = small_config(nodes=10, total_evaluations=10 * 8 * 6)
        result = run_single_fast(cfg, topology=topology)
        assert result.stop_reason == "budget"
        assert result.total_evaluations == 10 * 8 * 6

    def test_topology_choice_never_perturbs_node_streams(self):
        """Overlay randomness lives on its own seed branch, so swarm
        trajectories with gossip off are identical whatever overlay
        is configured."""
        cfg = small_config(nodes=6, total_evaluations=6 * 8 * 5)
        results = [
            run_single_fast(cfg, gossip=False, topology=t).best_value
            for t in ("newscast", "cyclon", "ring", "oracle")
        ]
        assert len(set(results)) == 1

    def test_rejects_factory_callables(self):
        with pytest.raises(Exception, match="factory"):
            FastEngine(small_config(), topology=isolated_topology)


class TestBatchedRng:
    """The batched draw regime: reproducible, per-node stable."""

    def test_deterministic_and_statistically_equivalent(self):
        cfg = small_config(nodes=12, total_evaluations=12 * 8 * 20, seed=71)
        a = run_single_fast(cfg, rng_mode="batched")
        b = run_single_fast(cfg, rng_mode="batched")
        assert a.best_value == b.best_value
        strict = run_single_fast(cfg, rng_mode="strict")
        ra = np.log10(max(a.quality, 1e-300))
        rs = np.log10(max(strict.quality, 1e-300))
        assert abs(ra - rs) < 2.0

    def test_per_node_blocks_keyed_by_id(self):
        """A node's draws depend on (seed, cycle, node id), not on the
        rest of the population: with gossip off, node 0's trajectory
        matches between an n=1 and an n=4 run."""
        cfg1 = small_config(nodes=1, total_evaluations=1 * 8 * 5)
        cfg4 = small_config(nodes=4, total_evaluations=4 * 8 * 5)
        e1 = FastEngine(cfg1, gossip=False, rng_mode="batched")
        e4 = FastEngine(cfg4, gossip=False, rng_mode="batched")
        e1.run(5)
        e4.run(5)
        row1 = e1.soa.node_state(0)
        row4 = e4.soa.node_state(0)
        assert np.array_equal(row1.positions, row4.positions)
        assert row1.best_value == row4.best_value

    def test_invalid_mode_rejected(self):
        with pytest.raises(Exception, match="rng_mode"):
            FastEngine(small_config(), rng_mode="philox")


class TestChurnSlotReuse:
    """Joins recycle crashed slots with capacity-doubling growth."""

    def test_slots_bounded_by_peak_population(self):
        cfg = small_config(
            nodes=12,
            total_evaluations=12 * 8 * 60,
            churn=ChurnConfig(crash_rate=0.25, join_rate=0.25, min_population=4),
            seed=83,
        )
        engine = FastEngine(cfg)
        engine.budget = None
        engine.run(60)
        assert engine.joins > engine.soa.n  # reuse actually happened
        assert engine.soa.n <= cfg.nodes + engine.joins
        # Ids keep growing monotonically even though slots recycle.
        assert engine.live_count == len(set(engine.live_ids().tolist()))
        assert engine.total_evaluations() == int(
            engine.soa.evaluations.sum()
        ) + engine._retired_evaluations

    def test_quality_still_matches_reference_under_heavy_churn(self):
        cfg = small_config(
            nodes=16,
            total_evaluations=16 * 8 * 20,
            churn=ChurnConfig(crash_rate=0.10, join_rate=0.10, min_population=5),
            seed=89,
        )
        ref = [
            run_single(cfg, repetition=r).quality for r in range(4)
        ]
        fast = [
            run_single_fast(cfg, repetition=r).quality for r in range(4)
        ]
        log_ref = np.log10(np.maximum(ref, 1e-300)).mean()
        log_fast = np.log10(np.maximum(fast, 1e-300)).mean()
        assert abs(log_ref - log_fast) < 2.0
