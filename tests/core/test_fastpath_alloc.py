"""Allocation discipline and pre-refactor bit-identity pins.

Two guards on the kernel-backend refactor (PR 8):

* **Pinned results** — ``run_single_fast`` with the default
  ``kernel_backend="numpy"`` must keep producing the exact pre-refactor
  bit streams.  The hex floats below were captured on the commit
  *before* the kernels package existed, so any reordering of IEEE
  operations inside the backends or the workspace paths fails loudly.
* **Zero steady-state allocations** — once the engine settles into
  full-sweep cycles, the workspace owns every large intermediate: a
  traced block of cycles must allocate no new large arrays and the
  workspace's allocation counter must stand still.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.fastpath import FastEngine, run_single_fast
from repro.functions.base import Function, register_function
from repro.functions.problem import DynamicsSpec
from repro.simulator.adversary import AdversarySpec
from repro.utils.config import ChurnConfig, ExperimentConfig

CONFIG_A = dict(function="sphere", nodes=32, particles_per_node=4,
                total_evaluations=2560, gossip_cycle=4, seed=7)

#: (topology, best_value hex, evals, cycles, coordination messages,
#: adoptions, newscast exchanges) — strict RNG, repetition 1, captured
#: pre-refactor.
PINNED_STRICT = [
    ("newscast", "0x1.36f9d03b5ed79p+9", 2560, 20, 1078, 305, 640),
    ("cyclon", "0x1.2e05c977746b7p+10", 2560, 20, 1055, 321, 640),
    ("ring", "0x1.9fd42f424607cp+9", 2560, 20, 1118, 223, 0),
    ("oracle", "0x1.fdd9caf2bf628p+9", 2560, 20, 1111, 255, 0),
]


class TestPinnedBitIdentity:
    """kernel_backend='numpy' reproduces the pre-refactor streams."""

    @pytest.mark.parametrize(
        "topology,want_hex,evals,cycles,msgs,adoptions,exchanges",
        PINNED_STRICT, ids=[row[0] for row in PINNED_STRICT],
    )
    def test_strict_topologies(self, topology, want_hex, evals, cycles,
                               msgs, adoptions, exchanges):
        res = run_single_fast(
            ExperimentConfig(**CONFIG_A), repetition=1, topology=topology,
            rng_mode="strict", kernel_backend="numpy",
        )
        assert float(res.best_value).hex() == want_hex
        assert res.total_evaluations == evals
        assert res.cycles == cycles
        assert res.messages.coordination_messages == msgs
        assert res.messages.coordination_adoptions == adoptions
        assert res.messages.newscast_exchanges == exchanges

    def test_batched_newscast(self):
        res = run_single_fast(
            ExperimentConfig(**CONFIG_A), repetition=1, topology="newscast",
            rng_mode="batched",
        )
        assert float(res.best_value).hex() == "0x1.1e9376a701fa6p+10"
        assert res.total_evaluations == 2560
        assert res.cycles == 20
        assert res.messages.coordination_messages == 1100
        assert res.messages.newscast_exchanges == 640

    def test_strict_under_churn(self):
        config = ExperimentConfig(
            function="rastrigin", nodes=24, particles_per_node=4,
            total_evaluations=1440, gossip_cycle=4, seed=11,
            churn=ChurnConfig(crash_rate=0.02, join_rate=0.02,
                              min_population=4),
        )
        res = run_single_fast(config, repetition=0, topology="newscast",
                              rng_mode="strict")
        assert float(res.best_value).hex() == "0x1.108536263f3c0p+6"
        assert res.total_evaluations == 1916
        assert res.cycles == 34
        assert res.crashes == 19
        assert res.joins == 20
        assert res.messages.coordination_messages == 1465
        assert res.messages.newscast_exchanges == 664

    @pytest.mark.parametrize(
        "topology,want_hex,evals,cycles,msgs,adoptions,exchanges",
        PINNED_STRICT, ids=[row[0] for row in PINNED_STRICT],
    )
    def test_default_problem_layer_specs_stay_bit_identical(
            self, topology, want_hex, evals, cycles, msgs, adoptions,
            exchanges):
        """Explicit default-disabled Dynamics/Adversary specs are no-ops.

        The time-aware Problem layer threads ``dynamics=``/``adversary=``
        through every engine; a scenario that leaves both at their
        defaults must keep producing the exact pre-Problem-layer bit
        streams — the same pins as ``test_strict_topologies``.
        """
        res = run_single_fast(
            ExperimentConfig(**CONFIG_A), repetition=1, topology=topology,
            rng_mode="strict", kernel_backend="numpy",
            dynamics=DynamicsSpec(), adversary=AdversarySpec(),
        )
        assert float(res.best_value).hex() == want_hex
        assert res.total_evaluations == evals
        assert res.cycles == cycles
        assert res.messages.coordination_messages == msgs
        assert res.messages.coordination_adoptions == adoptions
        assert res.messages.newscast_exchanges == exchanges
        assert res.dynamics is None
        assert res.adversary is None

    def test_strict_r_not_dividing_k(self):
        config = ExperimentConfig(
            function="sphere", nodes=16, particles_per_node=6,
            total_evaluations=960, gossip_cycle=3, seed=3,
        )
        res = run_single_fast(config, repetition=0, topology="newscast",
                              rng_mode="strict")
        assert float(res.best_value).hex() == "0x1.752bba3416ea0p+11"
        assert res.total_evaluations == 960
        assert res.cycles == 20
        assert res.messages.coordination_messages == 565
        assert res.messages.newscast_exchanges == 320


# -- steady-state allocation regression ---------------------------------------


class _CachingSphere(Function):
    """Sphere with internal scratch reuse and no per-call allocation.

    The registered objective suite allocates its result arrays fresh
    (``Function.batch`` has no ``out=`` channel), which would swamp a
    tracemalloc budget; the engine's own allocation discipline is the
    thing under test here, so the objective caches its buffers.
    """

    NAME = "_alloc_probe_sphere"

    def __init__(self, dimension: int | None = None):
        super().__init__(dimension or 10, -100.0, 100.0)
        self._sq: np.ndarray | None = None
        self._out: np.ndarray | None = None

    def batch(self, points: np.ndarray) -> np.ndarray:
        pts = self._validate_batch(points)
        m = pts.shape[0]
        if self._sq is None or self._sq.shape[0] < m:
            self._sq = np.empty((m, self.dimension))
            self._out = np.empty(m)
        sq = self._sq[:m]
        out = self._out[:m]
        np.multiply(pts, pts, out=sq)
        np.sum(sq, axis=1, out=out)
        return out


try:
    register_function(_CachingSphere.NAME, _CachingSphere)
except Exception:  # pragma: no cover - double import under odd collection
    pass


#: One regressed (n, k, d) temporary at this shape is 640 KB and a
#: merge candidate matrix 656 KB — both well above this budget; the
#: small (nl,)-sized per-cycle temporaries peak around 260 KB in
#: aggregate, comfortably below it.
LARGE_ALLOC_BUDGET = 384 * 1024


class TestSteadyStateAllocations:
    def _engine(self) -> FastEngine:
        config = ExperimentConfig(
            function=_CachingSphere.NAME, nodes=1000, particles_per_node=8,
            total_evaluations=10**9, gossip_cycle=8, seed=1,
        )
        return FastEngine(config, topology="newscast", rng_mode="strict")

    def test_settled_cycles_allocate_no_large_arrays(self):
        engine = self._engine()
        engine.run(4)  # settle: grow every workspace buffer once
        allocs_before = engine.workspace.allocations
        tracemalloc.start()
        try:
            engine.run(5)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert engine.workspace.allocations == allocs_before, (
            "workspace buffers must stop growing once settled: "
            f"{engine.workspace.names()}"
        )
        assert peak < LARGE_ALLOC_BUDGET, (
            f"steady-state cycles allocated {peak / 1024:.0f} KiB "
            f"(budget {LARGE_ALLOC_BUDGET // 1024} KiB): a large per-cycle "
            "temporary has crept back into the hot path"
        )

    def test_workspace_carries_the_hot_buffers(self):
        engine = self._engine()
        engine.run(3)
        names = set(engine.workspace.names())
        # Sweep double-buffers, gossip snapshots, and the NEWSCAST
        # candidate/merge matrices all live in the arena.
        for expected in ("sweep_pos", "sweep_vel", "sweep_pb", "sweep_pbv",
                         "sweep_val", "gp_val", "gp_posm", "gp_new_val",
                         "gp_new_pos", "nc_cand_ids", "nc_cand_ts",
                         "mc_key", "mc_out_ids", "mc_out_ts"):
            assert expected in names, f"{expected} missing from {names}"
