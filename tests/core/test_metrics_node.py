"""Tests for metrics collection and node assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coordination import CoordinationProtocol
from repro.core.dpso import PSOStepProtocol
from repro.core.metrics import (
    GlobalQualityObserver,
    MessageTally,
    estimate_overhead_bytes,
    global_best,
    total_evaluations,
)
from repro.core.node import OptimizationNodeSpec, build_optimization_node
from repro.functions.suite import Sphere
from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.topology.newscast import NewscastProtocol, bootstrap_views
from repro.topology.static import StaticTopologyProtocol
from repro.utils.config import CoordinationConfig, NewscastConfig, PSOConfig
from repro.utils.rng import SeedSequenceTree


def build_framework_network(n=6, budget=200, evals_per_cycle=4, topology_factory=None):
    tree = SeedSequenceTree(55)
    spec = OptimizationNodeSpec(
        function=Sphere(4),
        pso=PSOConfig(particles=4),
        newscast=NewscastConfig(view_size=8),
        coordination=CoordinationConfig(),
        rng_tree=tree,
        evals_per_cycle=evals_per_cycle,
        budget_per_node=budget,
        topology_factory=topology_factory,
    )
    net = Network(rng=tree.rng("network"))
    net.populate(n, factory=lambda node: build_optimization_node(node, spec))
    if topology_factory is None:
        bootstrap_views(net, tree.rng("bootstrap"))
    engine = CycleDrivenEngine(net, rng=tree.rng("engine"))
    return net, engine, spec


class TestNodeAssembly:
    def test_three_services_attached_in_order(self):
        net, _, _ = build_framework_network()
        names = net.node(0).protocol_names()
        assert names == ["newscast", "pso", "coordination"]

    def test_custom_topology_used_by_coordination(self):
        factory = lambda nid: ("topology", StaticTopologyProtocol([0]))
        net, _, _ = build_framework_network(topology_factory=factory)
        node = net.node(1)
        assert node.has_protocol("topology")
        assert not node.has_protocol("newscast")
        coord: CoordinationProtocol = node.protocol("coordination")
        assert coord.topology_protocol == "topology"

    def test_nodes_have_independent_streams(self):
        net, _, _ = build_framework_network()
        p0 = net.node(0).protocol("pso").service.swarm.state.positions
        p1 = net.node(1).protocol("pso").service.swarm.state.positions
        assert not np.array_equal(p0, p1)

    def test_spec_is_a_node_factory(self):
        net, engine, spec = build_framework_network()
        joiner = net.create_node()
        spec(joiner, engine)
        assert joiner.protocol_names() == ["newscast", "pso", "coordination"]


class TestGlobalMetrics:
    def test_global_best_tracks_minimum(self):
        net, engine, _ = build_framework_network()
        assert global_best(net) == float("inf")
        engine.run(2)
        best = global_best(net)
        node_bests = [
            net.node(i).protocol("pso").service.current_best().value
            for i in range(6)
        ]
        assert best == pytest.approx(min(node_bests))

    def test_total_evaluations_counts_dead_nodes(self):
        net, engine, _ = build_framework_network()
        engine.run(3)
        before = total_evaluations(net)
        net.crash(0)
        assert total_evaluations(net) == before

    def test_quality_observer_monotone_and_threshold(self):
        net, engine, _ = build_framework_network(budget=10_000)
        obs = GlobalQualityObserver(threshold=1e3, record_history=True)
        engine.add_observer(obs)
        engine.run(200)
        assert obs.threshold_cycle is not None
        assert engine.stop_reason == "threshold"
        bests = [h.best_value for h in obs.history]
        assert all(b <= a + 1e-15 for a, b in zip(bests, bests[1:]))

    def test_observer_invalid_threshold(self):
        with pytest.raises(ValueError):
            GlobalQualityObserver(threshold=0.0)

    def test_message_tally(self):
        net, engine, _ = build_framework_network()
        engine.run(5)
        tally = MessageTally.collect(engine)
        assert tally.newscast_exchanges > 0
        assert tally.coordination_messages > 0
        d = tally.as_dict()
        assert d["newscast_exchanges"] == tally.newscast_exchanges


class TestOverheadEstimate:
    def test_paper_magnitudes(self):
        """The paper claims 'a few bytes per second' per node; our
        estimate with its parameters (c=20, 10-D, 10s cycles) must
        land in tens of bytes/s."""
        est = estimate_overhead_bytes(view_size=20, dimension=10)
        assert est["newscast_message_bytes"] == pytest.approx(280.0)
        assert 10.0 < est["total_bytes_per_second"] < 100.0

    def test_slower_cycles_less_bandwidth(self):
        fast = estimate_overhead_bytes(20, 10, 10.0, 10.0)
        slow = estimate_overhead_bytes(20, 10, 60.0, 60.0)
        assert slow["total_bytes_per_second"] < fast["total_bytes_per_second"]

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_overhead_bytes(0, 10)
        with pytest.raises(ValueError):
            estimate_overhead_bytes(20, 10, newscast_cycle_seconds=0.0)
