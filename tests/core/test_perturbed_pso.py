"""Tests for per-node PSO parameter diversification (future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import global_best, total_evaluations
from repro.core.node import OptimizationNodeSpec, build_optimization_node
from repro.core.solvers import perturbed_pso_factory
from repro.functions.base import get_function
from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.topology.newscast import bootstrap_views
from repro.utils.config import CoordinationConfig, NewscastConfig, PSOConfig
from repro.utils.rng import SeedSequenceTree


class TestFactory:
    def test_parameters_vary_across_nodes(self):
        f = get_function("sphere")
        factory = perturbed_pso_factory(
            f, PSOConfig(particles=4),
            rng_for=lambda nid: np.random.default_rng(nid),
        )
        inertias = {factory(i).swarm.config.inertia for i in range(10)}
        accels = {factory(i).swarm.config.c1 for i in range(10)}
        assert len(inertias) == 10
        assert len(accels) == 10

    def test_parameters_within_ranges(self):
        f = get_function("sphere")
        factory = perturbed_pso_factory(
            f, PSOConfig(particles=4),
            rng_for=lambda nid: np.random.default_rng(nid),
            inertia_range=(0.6, 0.8),
            accel_range=(1.3, 1.7),
        )
        for i in range(20):
            cfg = factory(i).swarm.config
            assert 0.6 <= cfg.inertia <= 0.8
            assert 1.3 <= cfg.c1 <= 1.7
            assert cfg.c1 == cfg.c2

    def test_swarm_size_preserved(self):
        f = get_function("sphere")
        factory = perturbed_pso_factory(
            f, PSOConfig(particles=7),
            rng_for=lambda nid: np.random.default_rng(nid),
        )
        assert factory(0).swarm.state.size == 7

    def test_deterministic_per_node(self):
        f = get_function("sphere")
        mk = lambda: perturbed_pso_factory(
            f, PSOConfig(particles=4),
            rng_for=lambda nid: np.random.default_rng(nid),
        )
        assert mk()(3).swarm.config.inertia == mk()(3).swarm.config.inertia

    def test_invalid_ranges(self):
        f = get_function("sphere")
        with pytest.raises(ValueError):
            perturbed_pso_factory(
                f, PSOConfig(), lambda nid: None, inertia_range=(0.8, 0.6)
            )
        with pytest.raises(ValueError):
            perturbed_pso_factory(
                f, PSOConfig(), lambda nid: None, accel_range=(0.0, 1.0)
            )


class TestInNetwork:
    def test_heterogeneous_parameters_network_converges(self):
        tree = SeedSequenceTree(404)
        f = get_function("sphere")
        factory = perturbed_pso_factory(
            f, PSOConfig(particles=8),
            rng_for=lambda nid: tree.rng("pp", nid),
        )
        spec = OptimizationNodeSpec(
            function=f,
            pso=PSOConfig(particles=8),
            newscast=NewscastConfig(view_size=10),
            coordination=CoordinationConfig(),
            rng_tree=tree,
            evals_per_cycle=8,
            budget_per_node=1500,
            optimizer_factory=factory,
        )
        net = Network(rng=tree.rng("network"))
        net.populate(16, factory=lambda node: build_optimization_node(node, spec))
        bootstrap_views(net, tree.rng("bootstrap"))
        engine = CycleDrivenEngine(net, rng=tree.rng("engine"))
        engine.run(1500 // 8 + 1)
        assert total_evaluations(net) == 16 * 1500
        assert global_best(net) < 1.0
