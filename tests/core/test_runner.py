"""Tests for the experiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.runner import run_experiment, run_single
from repro.utils.config import ChurnConfig, ExperimentConfig
from repro.utils.exceptions import ConfigurationError


def make_config(**overrides) -> ExperimentConfig:
    base = dict(
        function="sphere",
        nodes=8,
        particles_per_node=4,
        total_evaluations=4000,
        gossip_cycle=4,
        repetitions=2,
        seed=7,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestRunSingle:
    def test_budget_exactly_consumed(self):
        result = run_single(make_config())
        assert result.total_evaluations == 4000
        assert result.stop_reason == "budget"

    def test_quality_reasonable_on_sphere(self):
        result = run_single(make_config())
        assert 0.0 <= result.quality < 100.0

    def test_budget_with_remainder(self):
        # 1000 evals over 8 nodes = 125 each; r=4 -> 31 cycles + 1 eval.
        result = run_single(make_config(total_evaluations=1000))
        assert result.total_evaluations == 125 * 8

    def test_threshold_stop(self):
        result = run_single(
            make_config(
                nodes=4,
                total_evaluations=2**16,
                particles_per_node=16,
                gossip_cycle=16,
                quality_threshold=1e-6,
            )
        )
        assert result.stop_reason == "threshold"
        assert result.reached_threshold
        assert result.threshold_local_time is not None
        assert result.threshold_local_time > 0
        assert result.threshold_total_evaluations <= 2**16
        assert result.quality <= 1e-6

    def test_threshold_miss_reports_budget(self):
        result = run_single(
            make_config(function="griewank", quality_threshold=1e-10)
        )
        assert result.stop_reason == "budget"
        assert not result.reached_threshold
        assert result.threshold_local_time is None

    def test_node_budget_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            run_single(make_config(nodes=8, total_evaluations=4))

    def test_history_recording(self):
        result = run_single(make_config(), record_history=True)
        assert len(result.history) == result.cycles
        bests = [h.best_value for h in result.history]
        assert all(b <= a + 1e-15 for a, b in zip(bests, bests[1:]))

    def test_history_off_by_default(self):
        assert run_single(make_config()).history == []

    def test_single_node_network(self):
        result = run_single(make_config(nodes=1, total_evaluations=500))
        assert result.total_evaluations == 500
        assert np.isfinite(result.quality)

    def test_message_tally_collected(self):
        result = run_single(make_config())
        assert result.messages.coordination_messages > 0
        assert result.messages.newscast_exchanges > 0
        assert result.messages.transport_sent >= result.messages.coordination_messages

    def test_node_best_spread_zero_after_full_diffusion(self):
        # Long run with frequent gossip: all nodes converge on one optimum.
        result = run_single(make_config(gossip_cycle=2))
        assert result.node_best_spread == pytest.approx(0.0, abs=1e-20)


class TestDeterminism:
    def test_same_seed_identical(self):
        a = run_single(make_config(), repetition=3)
        b = run_single(make_config(), repetition=3)
        assert a.best_value == b.best_value
        assert a.total_evaluations == b.total_evaluations
        assert a.cycles == b.cycles

    def test_repetitions_differ(self):
        a = run_single(make_config(), repetition=0)
        b = run_single(make_config(), repetition=1)
        assert a.best_value != b.best_value

    def test_seed_changes_results(self):
        a = run_single(make_config(seed=1))
        b = run_single(make_config(seed=2))
        assert a.best_value != b.best_value


class TestRunExperiment:
    def test_aggregates_repetitions(self):
        result = run_experiment(make_config(repetitions=3))
        assert len(result.runs) == 3
        stats = result.quality_stats
        assert stats.count == 3
        assert stats.minimum <= stats.mean <= stats.maximum

    def test_progress_callback(self):
        seen = []
        run_experiment(make_config(repetitions=2), progress=lambda i, r: seen.append(i))
        assert seen == [0, 1]

    def test_qualities_in_order(self):
        result = run_experiment(make_config(repetitions=3))
        assert result.qualities() == [r.quality for r in result.runs]

    def test_success_rate_no_threshold(self):
        assert run_experiment(make_config()).success_rate == 1.0

    def test_success_rate_with_threshold(self):
        result = run_experiment(
            make_config(
                function="griewank", quality_threshold=1e-10, repetitions=2
            )
        )
        assert result.success_rate == 0.0
        assert result.time_stats is None
        assert result.total_eval_stats is None


class TestChurnIntegration:
    def test_runs_under_churn(self):
        cfg = make_config(
            nodes=16,
            total_evaluations=8000,
            churn=ChurnConfig(crash_rate=0.02, join_rate=0.02, min_population=4),
        )
        result = run_single(cfg)
        assert np.isfinite(result.quality)
        assert result.total_evaluations > 0

    def test_churn_crashes_do_not_lose_global_best_metric(self):
        cfg = make_config(
            nodes=16,
            total_evaluations=8000,
            churn=ChurnConfig(crash_rate=0.05, min_population=2),
        )
        result = run_single(cfg, record_history=True)
        bests = [h.best_value for h in result.history]
        # The observer's best is cumulative: monotone even as nodes die.
        assert all(b <= a + 1e-15 for a, b in zip(bests, bests[1:]))
