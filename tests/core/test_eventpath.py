"""Tests for the cohort-batched event engine (core/eventpath.py).

The per-node :class:`~repro.deployment.runtime.AsyncRuntime` is the
correctness oracle: the cohort engine must reproduce its quality
trajectories and message tallies within statistical tolerance while
running the same :class:`DeploymentConfig` through the SoA kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.eventpath import (
    CohortEventEngine,
    default_window,
    run_single_event_fast,
)
from repro.deployment.runtime import AsyncRuntime, DeploymentConfig
from repro.utils.exceptions import ConfigurationError


def make_config(**overrides) -> DeploymentConfig:
    base = dict(
        function="sphere",
        nodes=12,
        particles_per_node=8,
        budget_per_node=800,
        evals_per_tick=8,
        seed=9,
    )
    base.update(overrides)
    return DeploymentConfig(**base)


class TestBasicExecution:
    def test_budget_exactly_consumed(self):
        result = CohortEventEngine(make_config()).run(until=5000.0)
        assert result.total_evaluations == 12 * 800
        assert result.stop_reason == "budget"

    def test_horizon_stop(self):
        result = CohortEventEngine(
            make_config(budget_per_node=10**6)
        ).run(until=20.0)
        assert result.stop_reason == "horizon"
        assert result.sim_time == pytest.approx(20.0)

    def test_threshold_stop(self):
        result = CohortEventEngine(
            make_config(budget_per_node=50_000, quality_threshold=1e-3)
        ).run(until=50_000.0)
        assert result.stop_reason == "threshold"
        assert result.threshold_time is not None
        assert result.quality <= 1e-3

    def test_history_monotone_at_monitor_times(self):
        cfg = make_config()
        result = CohortEventEngine(cfg).run(until=5000.0)
        times = [t for t, _, _ in result.history]
        assert times == pytest.approx(
            [cfg.monitor_period * (i + 1) for i in range(len(times))]
        )
        finite = [b for _, _, b in result.history if np.isfinite(b)]
        assert all(b2 <= b1 + 1e-15 for b1, b2 in zip(finite, finite[1:]))

    def test_messages_flow(self):
        result = CohortEventEngine(make_config()).run(until=5000.0)
        assert result.messages.coordination_messages > 0
        assert result.messages.newscast_exchanges > 0
        assert result.messages.transport_sent >= (
            result.messages.coordination_messages
            + result.messages.newscast_exchanges
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CohortEventEngine(make_config(), window=0.0)
        with pytest.raises(ConfigurationError):
            CohortEventEngine(make_config(), window=-1.0)
        with pytest.raises(ConfigurationError):
            CohortEventEngine(make_config(), window=float("inf"))
        with pytest.raises(ConfigurationError):
            CohortEventEngine(make_config(), window=float("nan"))
        with pytest.raises(ValueError):
            CohortEventEngine(make_config()).run(until=0.0)
        # Latency comparable to the timer periods needs AsyncRuntime.
        with pytest.raises(ConfigurationError):
            CohortEventEngine(make_config(latency_min=2.0, latency_max=8.0))

    def test_default_window_is_half_fastest_period(self):
        cfg = make_config(compute_period=2.0, newscast_period=6.0,
                          gossip_period=4.0)
        assert default_window(cfg) == pytest.approx(1.0)
        assert CohortEventEngine(cfg).window == pytest.approx(1.0)

    def test_oversized_window_still_exact_on_budget(self):
        # Timers fire several times per window: the multi-pass loops
        # must still spend exactly the configured budget.
        result = CohortEventEngine(make_config(), window=7.0).run(until=5000.0)
        assert result.total_evaluations == 12 * 800
        assert result.stop_reason == "budget"

    def test_strict_rng_mode_runs(self):
        result = CohortEventEngine(
            make_config(), rng_mode="strict"
        ).run(until=2000.0)
        assert result.total_evaluations == 12 * 800

    def test_batched_rng_mode_runs_and_is_deterministic(self):
        a = CohortEventEngine(make_config(), rng_mode="batched").run(until=2000.0)
        b = CohortEventEngine(make_config(), rng_mode="batched").run(until=2000.0)
        assert a.total_evaluations == 12 * 800
        assert a.best_value == b.best_value

    def test_functional_helper_matches_engine(self):
        a = run_single_event_fast(make_config(), until=500.0)
        b = CohortEventEngine(make_config()).run(until=500.0)
        assert a.best_value == b.best_value
        assert a.total_evaluations == b.total_evaluations


class TestDeterminism:
    def test_same_seed_identical(self):
        a = CohortEventEngine(make_config()).run(until=3000.0)
        b = CohortEventEngine(make_config()).run(until=3000.0)
        assert a.best_value == b.best_value
        assert a.total_evaluations == b.total_evaluations
        assert a.messages.transport_sent == b.messages.transport_sent

    def test_different_seed_differs(self):
        a = CohortEventEngine(make_config(seed=1)).run(until=3000.0)
        b = CohortEventEngine(make_config(seed=2)).run(until=3000.0)
        assert a.best_value != b.best_value

    def test_repetitions_branch_independently(self):
        a = CohortEventEngine(make_config(), repetition=0).run(until=1000.0)
        b = CohortEventEngine(make_config(), repetition=1).run(until=1000.0)
        assert a.best_value != b.best_value


class TestChurnAndLoss:
    def test_poisson_churn_runs(self):
        result = CohortEventEngine(
            make_config(nodes=24, crash_rate=0.05, join_rate=0.05,
                        min_population=6, budget_per_node=2000)
        ).run(until=400.0)
        assert result.crashes > 0
        assert result.joins > 0
        assert np.isfinite(result.quality)

    def test_population_floor_respected(self):
        engine = CohortEventEngine(
            make_config(nodes=8, crash_rate=1.0, min_population=3,
                        budget_per_node=10**6)
        )
        engine.run(until=100.0)
        assert engine.live_count >= 3

    def test_runs_under_message_loss(self):
        lossless = CohortEventEngine(make_config()).run(until=5000.0)
        lossy = CohortEventEngine(make_config(loss_rate=0.3)).run(until=5000.0)
        # Loss slows diffusion, not computation (paper Sec. 3.3.4).
        assert lossy.total_evaluations == lossless.total_evaluations
        assert np.isfinite(lossy.quality)


class TestAsyncEquivalence:
    """The pinned suite: cohort batching must not change the physics.

    Medians over seeds keep these robust; the tolerances are far
    tighter than the regime gaps the experiments measure (configuration
    changes move these quantities by orders of magnitude).
    """

    SEEDS = (1, 2, 3)
    HORIZON = 2000.0

    def _pair(self, seed: int, **overrides):
        base = dict(nodes=16, budget_per_node=1000, seed=seed)
        base.update(overrides)
        cfg = make_config(**base)
        ref = AsyncRuntime(cfg).run(until=self.HORIZON)
        fast = CohortEventEngine(cfg).run(until=self.HORIZON)
        return ref, fast

    @staticmethod
    def _logq(value: float) -> float:
        return float(np.log10(max(value, 1e-300)))

    def test_quality_trajectories_match(self):
        ref_final, fast_final = [], []
        ref_mid, fast_mid = [], []
        for seed in self.SEEDS:
            ref, fast = self._pair(seed)
            assert ref.stop_reason == fast.stop_reason == "budget"
            assert ref.total_evaluations == fast.total_evaluations
            ref_final.append(self._logq(ref.quality))
            fast_final.append(self._logq(fast.quality))
            # Mid-run sample: best value at the same monitor instant.
            shared = min(len(ref.history), len(fast.history))
            mid = shared // 2
            assert ref.history[mid][0] == pytest.approx(fast.history[mid][0])
            ref_mid.append(self._logq(ref.history[mid][2]))
            fast_mid.append(self._logq(fast.history[mid][2]))
        assert abs(np.median(ref_final) - np.median(fast_final)) < 3.0
        assert abs(np.median(ref_mid) - np.median(fast_mid)) < 3.0

    def test_message_tallies_match(self):
        totals = {"ref": {}, "fast": {}}
        for seed in self.SEEDS:
            ref, fast = self._pair(seed)
            for key, res in (("ref", ref), ("fast", fast)):
                for name, count in res.messages.as_dict().items():
                    totals[key][name] = totals[key].get(name, 0) + count
        for name in ("newscast_exchanges", "coordination_messages",
                     "coordination_adoptions", "transport_sent"):
            ref_n, fast_n = totals["ref"][name], totals["fast"][name]
            assert ref_n > 0, name
            ratio = fast_n / ref_n
            assert 0.6 < ratio < 1.67, (name, ref_n, fast_n)

    def test_churn_counts_match(self):
        ref_events, fast_events = [], []
        for seed in self.SEEDS:
            ref, fast = self._pair(
                seed, nodes=24, crash_rate=0.02, join_rate=0.02,
                min_population=6, budget_per_node=4000,
            )
            ref_events.append(ref.crashes + ref.joins)
            fast_events.append(fast.crashes + fast.joins)
        # Same Poisson process, independent draws: compare totals.
        ref_total, fast_total = sum(ref_events), sum(fast_events)
        assert ref_total > 0 and fast_total > 0
        assert 0.5 < fast_total / ref_total < 2.0
