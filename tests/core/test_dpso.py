"""Tests for the distributed-PSO optimization service and its driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dpso import DistributedPSOService, PSOStepProtocol
from repro.core.optimum import Optimum
from repro.functions.counting import CountingFunction
from repro.functions.suite import Sphere
from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.utils.config import PSOConfig


def make_service(k=4, seed=0, counting=False):
    f = CountingFunction(Sphere(4)) if counting else Sphere(4)
    return DistributedPSOService(f, PSOConfig(particles=k), np.random.default_rng(seed)), f


class TestService:
    def test_no_best_before_any_evaluation(self):
        service, _ = make_service()
        assert service.current_best() is None
        assert service.evaluations == 0

    def test_local_step_produces_best(self):
        service, _ = make_service()
        service.local_step()
        best = service.current_best()
        assert best is not None
        assert np.isfinite(best.value)
        assert service.evaluations == 1

    def test_offer_better_adopted(self):
        service, _ = make_service()
        service.local_step()
        assert service.offer(Optimum(np.zeros(4), 1e-20))
        assert service.current_best().value == 1e-20
        assert service.offers_accepted == 1

    def test_offer_worse_rejected(self):
        service, _ = make_service()
        service.local_step()
        before = service.current_best().value
        assert not service.offer(Optimum(np.ones(4), before + 10.0))
        assert service.offers_rejected == 1
        assert service.current_best().value == before

    def test_step_evaluations_vectorized_path_counts(self):
        service, f = make_service(k=4, counting=True)
        service.step_evaluations(12)  # 3 whole sweeps -> vectorized
        assert f.evaluations == 12
        assert service.evaluations == 12

    def test_step_evaluations_fallback_path_counts(self):
        service, f = make_service(k=4, counting=True)
        service.step_evaluations(7)  # not a multiple of k
        assert f.evaluations == 7

    def test_vectorized_and_fallback_both_improve(self):
        sync_service, _ = make_service(k=8, seed=1)
        sync_service.step_evaluations(8 * 100)
        async_service, _ = make_service(k=8, seed=1)
        for _ in range(100):
            async_service.step_evaluations(8)
        assert sync_service.current_best().value < 1e3
        assert async_service.current_best().value < 1e3

    def test_negative_count_raises(self):
        service, _ = make_service()
        with pytest.raises(ValueError):
            service.step_evaluations(-1)


class TestStepProtocol:
    def build_engine(self, k=4, evals_per_cycle=8, budget=40):
        net = Network(rng=np.random.default_rng(0))
        services = []

        def factory(node):
            service, _ = make_service(k=k, seed=node.node_id)
            services.append(service)
            node.attach("pso", PSOStepProtocol(service, evals_per_cycle, budget))

        net.populate(3, factory=factory)
        return CycleDrivenEngine(net, rng=np.random.default_rng(1)), services

    def test_budget_respected_exactly(self):
        engine, services = self.build_engine(evals_per_cycle=8, budget=40)
        engine.run(10)  # more cycles than needed
        assert all(s.evaluations == 40 for s in services)

    def test_partial_last_cycle(self):
        engine, services = self.build_engine(evals_per_cycle=16, budget=40)
        engine.run(5)
        assert all(s.evaluations == 40 for s in services)  # 16+16+8

    def test_exhausted_flag(self):
        engine, services = self.build_engine(evals_per_cycle=8, budget=16)
        net = engine.network
        proto = net.node(0).protocol("pso")
        assert not proto.exhausted
        engine.run(2)
        assert proto.exhausted
        assert proto.remaining == 0

    def test_unlimited_budget(self):
        net = Network(rng=np.random.default_rng(0))
        service, _ = make_service()
        net.populate(1, factory=lambda n: n.attach(
            "pso", PSOStepProtocol(service, 8, None)))
        engine = CycleDrivenEngine(net, rng=np.random.default_rng(1))
        engine.run(5)
        assert service.evaluations == 40
        proto = net.node(0).protocol("pso")
        assert proto.remaining is None
        assert not proto.exhausted

    def test_invalid_construction(self):
        service, _ = make_service()
        with pytest.raises(ValueError):
            PSOStepProtocol(service, 0, 10)
        with pytest.raises(ValueError):
            PSOStepProtocol(service, 1, -1)
