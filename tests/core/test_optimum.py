"""Tests for the Optimum value object."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.optimum import Optimum


class TestOptimum:
    def test_construction(self):
        opt = Optimum(np.array([1.0, 2.0]), 3.5)
        assert opt.value == 3.5
        assert opt.dimension == 2
        assert np.array_equal(opt.position, [1.0, 2.0])

    def test_position_is_read_only(self):
        opt = Optimum(np.array([1.0, 2.0]), 0.0)
        with pytest.raises(ValueError):
            opt.position[0] = 9.0

    def test_position_copied_from_source(self):
        src = np.array([1.0, 2.0])
        opt = Optimum(src, 0.0)
        src[0] = 99.0
        assert opt.position[0] == 1.0

    def test_ordering(self):
        a = Optimum(np.zeros(2), 1.0)
        b = Optimum(np.ones(2), 2.0)
        assert a < b
        assert not (b < a)

    def test_better_than(self):
        a = Optimum(np.zeros(2), 1.0)
        b = Optimum(np.ones(2), 2.0)
        assert a.better_than(b)
        assert not b.better_than(a)
        assert a.better_than(None)

    def test_equal_values_not_better(self):
        a = Optimum(np.zeros(2), 1.0)
        b = Optimum(np.ones(2), 1.0)
        assert not a.better_than(b)
        assert not b.better_than(a)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Optimum(np.zeros(2), float("nan"))

    def test_accepts_list_position(self):
        opt = Optimum([1.0, 2.0], 0.5)  # type: ignore[arg-type]
        assert opt.dimension == 2

    def test_inf_value_allowed(self):
        # inf = "knows nothing yet" is a legitimate sentinel.
        opt = Optimum(np.zeros(2), float("inf"))
        assert opt.value == float("inf")
