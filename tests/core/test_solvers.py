"""Tests for the alternative solvers (future-work extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.node import OptimizationNodeSpec, build_optimization_node
from repro.core.optimum import Optimum
from repro.core.solvers import (
    DifferentialEvolutionService,
    RandomSearchService,
    mixed_solver_factory,
)
from repro.functions.suite import Sphere
from repro.functions.base import get_function
from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.topology.newscast import bootstrap_views
from repro.utils.config import CoordinationConfig, NewscastConfig, PSOConfig
from repro.utils.rng import SeedSequenceTree


class TestRandomSearch:
    def test_one_evaluation_per_step(self):
        service = RandomSearchService(Sphere(4), np.random.default_rng(0))
        for i in range(10):
            service.local_step()
        assert service.evaluations == 10

    def test_best_monotone(self):
        service = RandomSearchService(Sphere(4), np.random.default_rng(0))
        bests = []
        for _ in range(200):
            service.local_step()
            bests.append(service.current_best().value)
        assert all(b <= a for a, b in zip(bests, bests[1:]))

    def test_offer_adopted_if_better(self):
        service = RandomSearchService(Sphere(4), np.random.default_rng(0))
        service.local_step()
        assert service.offer(Optimum(np.zeros(4), 0.0))
        assert service.current_best().value == 0.0
        assert not service.offer(Optimum(np.ones(4), 1.0))

    def test_no_best_initially(self):
        service = RandomSearchService(Sphere(4), np.random.default_rng(0))
        assert service.current_best() is None


class TestDifferentialEvolution:
    def make(self, pop=8, seed=0, dim=4):
        return DifferentialEvolutionService(
            Sphere(dim), pop, np.random.default_rng(seed)
        )

    def test_initial_population_evaluated_first(self):
        service = self.make(pop=6)
        for i in range(6):
            service.local_step()
        assert service.evaluations == 6
        assert np.all(np.isfinite(service.values))

    def test_converges_on_sphere(self):
        service = self.make(pop=16, seed=1)
        for _ in range(16 * 400):
            service.local_step()
        assert service.current_best().value < 1e-2

    def test_best_monotone(self):
        service = self.make()
        bests = []
        for _ in range(300):
            service.local_step()
            bests.append(service.current_best().value)
        assert all(b <= a for a, b in zip(bests, bests[1:]))

    def test_population_values_consistent(self):
        service = self.make()
        for _ in range(200):
            service.local_step()
        recomputed = service.function.batch(service.population)
        assert np.allclose(recomputed, service.values)

    def test_trial_points_respect_domain(self):
        service = self.make()
        for _ in range(300):
            service.local_step()
        assert np.all(service.function.contains(service.population))

    def test_offer_injected_over_worst(self):
        service = self.make(pop=5)
        for _ in range(5):
            service.local_step()
        worst_before = float(service.values.max())
        assert service.offer(Optimum(np.zeros(4), 1e-20))
        assert service.current_best().value == 1e-20
        assert float(service.values.max()) <= worst_before

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            DifferentialEvolutionService(Sphere(4), 3, rng)
        with pytest.raises(ValueError):
            DifferentialEvolutionService(Sphere(4), 8, rng, f_weight=0.0)
        with pytest.raises(ValueError):
            DifferentialEvolutionService(Sphere(4), 8, rng, crossover=1.5)


class TestMixedNetwork:
    def build_mixed(self, assignments, n=9, budget=600):
        tree = SeedSequenceTree(66)
        function = get_function("sphere")
        factory = mixed_solver_factory(
            function,
            assignments,
            swarm_particles=6,
            rng_for=lambda nid, name: tree.rng("solver", nid, name),
        )
        spec = OptimizationNodeSpec(
            function=function,
            pso=PSOConfig(particles=6),
            newscast=NewscastConfig(view_size=8),
            coordination=CoordinationConfig(),
            rng_tree=tree,
            evals_per_cycle=6,
            budget_per_node=budget,
            optimizer_factory=factory,
        )
        net = Network(rng=tree.rng("network"))
        net.populate(n, factory=lambda node: build_optimization_node(node, spec))
        bootstrap_views(net, tree.rng("bootstrap"))
        engine = CycleDrivenEngine(net, rng=tree.rng("engine"))
        return net, engine

    def test_heterogeneous_network_runs(self):
        net, engine = self.build_mixed(["pso", "de", "random"])
        engine.run(100)
        from repro.core.metrics import global_best, total_evaluations

        assert np.isfinite(global_best(net))
        assert total_evaluations(net) == 9 * 600

    def test_knowledge_flows_across_solver_types(self):
        net, engine = self.build_mixed(["pso", "de", "random"])
        engine.run(100)
        # After exhaustion + extra gossip, all nodes agree regardless
        # of solver type.
        engine.run(20)
        bests = [
            net.node(nid).protocol("pso").service.current_best().value
            for nid in net.live_ids()
        ]
        assert max(bests) - min(bests) < 1e-12

    def test_mixed_beats_pure_random(self):
        net_mixed, eng_mixed = self.build_mixed(["pso", "random"])
        net_rand, eng_rand = self.build_mixed(["random"])
        eng_mixed.run(100)
        eng_rand.run(100)
        from repro.core.metrics import global_best

        assert global_best(net_mixed) < global_best(net_rand)

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError):
            mixed_solver_factory(
                Sphere(4), ["pso", "annealing"], 6, lambda n, s: None
            )

    def test_empty_assignments_rejected(self):
        with pytest.raises(ValueError):
            mixed_solver_factory(Sphere(4), [], 6, lambda n, s: None)
