"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.network import Network
from repro.utils.rng import SeedSequenceTree


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests that need raw randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def seed_tree() -> SeedSequenceTree:
    """A deterministic seed tree."""
    return SeedSequenceTree(987)


@pytest.fixture
def network(rng) -> Network:
    """An empty network with a seeded RNG."""
    return Network(rng=rng)
