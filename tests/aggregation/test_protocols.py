"""Tests for gossip aggregation — including the published convergence rate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation.protocols import (
    PushPullAveraging,
    PushPullExtremum,
    aggregate_values,
    network_counting_value,
)
from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.topology.newscast import NewscastProtocol, bootstrap_views
from repro.utils.config import NewscastConfig
from repro.utils.rng import SeedSequenceTree


def build_aggregation_network(n, values, seed=0, mode=None):
    tree = SeedSequenceTree(seed)
    net = Network(rng=tree.rng("network"))

    def factory(node):
        nid = node.node_id
        node.attach(
            "newscast",
            NewscastProtocol(NewscastConfig(view_size=15), tree.rng("nc", nid)),
        )
        if mode is None:
            proto = PushPullAveraging(values[nid], "newscast", tree.rng("agg", nid))
        else:
            proto = PushPullExtremum(
                values[nid], "newscast", tree.rng("agg", nid), mode=mode
            )
        node.attach("aggregation", proto)

    net.populate(n, factory=factory)
    bootstrap_views(net, tree.rng("bootstrap"))
    return net, CycleDrivenEngine(net, rng=tree.rng("engine"))


class TestAveraging:
    def test_sum_conserved_exactly(self):
        values = list(np.linspace(-5, 20, 32))
        net, engine = build_aggregation_network(32, values)
        total_before = aggregate_values(net).sum()
        engine.run(15)
        assert aggregate_values(net).sum() == pytest.approx(total_before, rel=1e-12)

    def test_converges_to_global_average(self):
        rng = np.random.default_rng(4)
        values = list(rng.normal(10.0, 5.0, size=64))
        net, engine = build_aggregation_network(64, values)
        engine.run(30)
        estimates = aggregate_values(net)
        assert np.allclose(estimates, np.mean(values), atol=1e-3)

    def test_variance_contraction_rate(self):
        """Jelasity et al. 2005: variance contracts ≈ 1/(2√e) ≈ 0.39
        per cycle under push–pull averaging.  Assert the empirical
        per-cycle factor lands in a generous band around it."""
        rng = np.random.default_rng(9)
        values = list(rng.normal(0.0, 1.0, size=256))
        net, engine = build_aggregation_network(256, values, seed=2)
        variances = [aggregate_values(net).var()]
        for _ in range(10):
            engine.run(1)
            variances.append(aggregate_values(net).var())
        factors = [b / a for a, b in zip(variances, variances[1:]) if a > 0]
        mean_factor = float(np.mean(factors))
        assert 0.15 < mean_factor < 0.65

    def test_size_estimation_trick(self):
        n = 48
        values = [network_counting_value(i) for i in range(n)]
        net, engine = build_aggregation_network(n, values, seed=3)
        engine.run(30)
        estimates = aggregate_values(net)
        sizes = 1.0 / estimates
        assert np.allclose(sizes, n, rtol=0.05)

    def test_isolated_node_keeps_value(self):
        # Single node: no partners; estimate unchanged.
        net, engine = build_aggregation_network(1, [7.0])
        engine.run(5)
        assert aggregate_values(net)[0] == 7.0


class TestExtremum:
    def test_min_spreads(self):
        values = [float(i + 1) for i in range(32)]
        net, engine = build_aggregation_network(32, values, mode="min")
        engine.run(15)
        assert np.all(aggregate_values(net) == 1.0)

    def test_max_spreads(self):
        values = [float(i + 1) for i in range(32)]
        net, engine = build_aggregation_network(32, values, mode="max")
        engine.run(15)
        assert np.all(aggregate_values(net) == 32.0)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            PushPullExtremum(0.0, "newscast", np.random.default_rng(0), mode="median")


class TestCustomProtocolName:
    def test_two_aggregators_side_by_side(self):
        """Distinct protocol_name instances coexist on one overlay
        without cross-talk (size estimator + progress averager)."""
        tree = SeedSequenceTree(42)
        net = Network(rng=tree.rng("network"))

        def factory(node):
            nid = node.node_id
            node.attach(
                "newscast",
                NewscastProtocol(NewscastConfig(view_size=10), tree.rng("nc", nid)),
            )
            node.attach(
                "agg_a",
                PushPullAveraging(
                    float(nid), "newscast", tree.rng("a", nid), protocol_name="agg_a"
                ),
            )
            node.attach(
                "agg_b",
                PushPullAveraging(
                    100.0 + nid, "newscast", tree.rng("b", nid), protocol_name="agg_b"
                ),
            )

        net.populate(16, factory=factory)
        bootstrap_views(net, tree.rng("bootstrap"))
        engine = CycleDrivenEngine(net, rng=tree.rng("engine"))
        engine.run(25)
        a_vals = aggregate_values(net, "agg_a")
        b_vals = aggregate_values(net, "agg_b")
        assert np.allclose(a_vals, 7.5, atol=1e-3)      # mean of 0..15
        assert np.allclose(b_vals, 107.5, atol=1e-3)    # mean of 100..115


class TestChurnTolerance:
    def test_crashes_do_not_break_averaging(self):
        """Averaging under crashes loses the dead nodes' mass but the
        survivors still reach consensus on a finite value."""
        values = list(np.linspace(0, 10, 40))
        net, engine = build_aggregation_network(40, values, seed=6)
        engine.run(5)
        for nid in range(10):
            net.crash(nid)
        engine.run(30)
        estimates = aggregate_values(net)
        assert estimates.std() < 1e-3  # survivors agree
        assert np.all(np.isfinite(estimates))
