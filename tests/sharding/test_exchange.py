"""Exchange fabrics: both implementations honor one barrier contract."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.sharding.exchange import (
    InProcessExchange,
    ShardExchangeAborted,
    ShardExchangeTimeout,
    SpoolExchange,
)


def _payload(value):
    return {"data": np.asarray([value, value + 1]), "scalar": np.int64(value)}


@pytest.fixture(params=["inprocess", "spool"])
def fabric(request, tmp_path):
    if request.param == "inprocess":
        return InProcessExchange(shards=3, timeout=5.0)
    return SpoolExchange(tmp_path / "spool", shards=3, timeout=5.0)


def test_post_then_collect_round_trips(fabric):
    fabric.post(0, 1, src=1, dst=0, payload=_payload(10))
    fabric.post(0, 1, src=2, dst=0, payload=_payload(20))
    got = fabric.collect(0, 1, dst=0, srcs=[1, 2])
    assert sorted(got) == [1, 2]
    np.testing.assert_array_equal(got[1]["data"], [10, 11])
    assert int(got[2]["scalar"]) == 20


def test_empty_payload_still_completes_barrier(fabric):
    fabric.post(3, 2, src=1, dst=0, payload={})
    got = fabric.collect(3, 2, dst=0, srcs=[1])
    assert got[1] == {}


def test_collect_times_out_on_missing_peer(tmp_path):
    for fabric in (
        InProcessExchange(shards=2, timeout=0.1),
        SpoolExchange(tmp_path / "s", shards=2, timeout=0.1, poll=0.01),
    ):
        with pytest.raises(ShardExchangeTimeout):
            fabric.collect(0, 1, dst=0, srcs=[1])


def test_collect_blocks_until_peer_posts():
    fabric = InProcessExchange(shards=2, timeout=5.0)
    result = {}

    def consumer():
        result.update(fabric.collect(0, 1, dst=0, srcs=[1]))

    thread = threading.Thread(target=consumer)
    thread.start()
    fabric.post(0, 1, src=1, dst=0, payload=_payload(7))
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    np.testing.assert_array_equal(result[1]["data"], [7, 8])


def test_abort_fails_pending_collect():
    fabric = InProcessExchange(shards=2, timeout=5.0)
    errors = []

    def consumer():
        try:
            fabric.collect(0, 1, dst=0, srcs=[1])
        except ShardExchangeAborted as exc:
            errors.append(exc)

    thread = threading.Thread(target=consumer)
    thread.start()
    fabric.abort("peer shard 1 died")
    thread.join(timeout=5.0)
    assert errors and "peer shard 1 died" in str(errors[0])


def test_spool_posts_are_idempotent(tmp_path):
    fabric = SpoolExchange(tmp_path / "spool", shards=2, timeout=5.0)
    fabric.post(0, 1, src=1, dst=0, payload=_payload(1))
    # a replaying worker re-posts the (deterministic) payload; the
    # original file must win untouched
    fabric.post(0, 1, src=1, dst=0, payload=_payload(999))
    got = fabric.collect(0, 1, dst=0, srcs=[1])
    np.testing.assert_array_equal(got[1]["data"], [1, 2])


def test_spool_collect_is_rereadable(tmp_path):
    """Files persist: a respawned worker can re-collect history."""
    fabric = SpoolExchange(tmp_path / "spool", shards=2, timeout=5.0)
    fabric.post(0, 1, src=1, dst=0, payload=_payload(5))
    first = fabric.collect(0, 1, dst=0, srcs=[1])
    second = fabric.collect(0, 1, dst=0, srcs=[1])
    np.testing.assert_array_equal(first[1]["data"], second[1]["data"])
