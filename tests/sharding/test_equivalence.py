"""Sharded runs are statistically equivalent to the single-process fast engine.

The partition must be invisible: the same scenario run over 2 or 3
shards has identical synchronous structure (cycle counts, evaluation
totals, stop reasons) and quality in the same statistical regime as
``engine="fast"`` in one process — only the gossip/topology random
streams differ.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenario import ExecutionPolicy, Scenario, Session
from repro.sharding import ShardPlan, run_sharded, validate_sharded
from repro.sharding.views import make_shard_views
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import SeedSequenceTree


def _scenario(**overrides) -> Scenario:
    base = dict(
        function="sphere",
        nodes=32,
        total_evaluations=2560,
        max_cycles=60,
        engine="fast",
        repetitions=1,
        seed=11,
    )
    base.update(overrides)
    return Scenario(**base)


def test_budget_structure_matches_single_process_exactly():
    """Cycles, evaluation totals and stop reason are barrier-exact."""
    scenario = _scenario()
    single = Session(scenario).run_one(0)
    for shards in (2, 3):
        rec = run_sharded(scenario, repetition=0, shards=shards)
        assert rec.cycles == single.cycles
        assert rec.total_evaluations == single.total_evaluations
        assert rec.stop_reason == single.stop_reason == "budget"
        assert np.isfinite(rec.best_value)


def test_quality_in_same_statistical_regime():
    """Mean log-quality over repetitions lands in the same regime."""
    reps = 4

    def log_qualities(runner):
        out = []
        for rep in range(reps):
            q = runner(rep)
            out.append(np.log10(max(q, 1e-300)))
        return np.asarray(out)

    scenario = _scenario()
    single = log_qualities(lambda r: Session(scenario).run_one(r).quality)
    sharded = log_qualities(
        lambda r: run_sharded(scenario, repetition=r, shards=2).quality
    )
    # different random streams, same optimizer dynamics: the means sit
    # within a few orders of magnitude on a trajectory spanning dozens
    assert abs(single.mean() - sharded.mean()) < 3.0


def test_threshold_stop_reached_by_both():
    scenario = _scenario(
        quality_threshold=1.0, total_evaluations=64000, max_cycles=400
    )
    single = Session(scenario).run_one(0)
    rec = run_sharded(scenario, repetition=0, shards=2)
    assert single.stop_reason == "threshold"
    assert rec.stop_reason == "threshold"
    assert rec.quality <= 1.0
    # similar time-to-threshold (same dynamics, different streams)
    assert abs(rec.cycles - single.cycles) <= max(5, single.cycles)


def test_session_policy_entry_point_matches_run_sharded():
    scenario = _scenario()
    via_session = Session(scenario).run(policy=ExecutionPolicy(shards=2))
    direct = run_sharded(scenario, repetition=0, shards=2)
    assert via_session.records[0] == direct


def test_sharded_newscast_overlay_mixes_across_shards():
    """After warm-up the partitioned overlay looks like one overlay:
    views are full, self-free, and hold a healthy fraction of remote
    peers on both sides of the cut."""
    plan = ShardPlan(nodes=64, shards=2)
    tree = SeedSequenceTree(5)
    views = [
        make_shard_views(
            "newscast", plan, s, 20,
            tree.rng("topology", "newscast", "shard", s),
        )
        for s in range(2)
    ]
    for cycle in range(30):
        outs = [v.begin_cycle(cycle) for v in views]
        replies = []
        for d, v in enumerate(views):
            incoming = {
                src: outs[src][d]
                for src in range(2)
                if src != d and d in outs[src]
            }
            replies.append(v.apply_requests(incoming))
        for d, v in enumerate(views):
            incoming = {
                src: replies[src][d]
                for src in range(2)
                if src != d and d in replies[src]
            }
            v.apply_replies(incoming)
    for s, v in enumerate(views):
        matrix = v.neighbor_matrix()
        lo, hi = plan.block(s)
        own = np.arange(lo, hi)
        # full views, valid global ids, no self-loops
        assert (matrix >= 0).all() and (matrix < plan.nodes).all()
        assert not (matrix == own[:, None]).any()
        # cross-shard mixing: a fair share of entries are remote
        remote = ((matrix < lo) | (matrix >= hi)).mean()
        assert 0.2 < remote < 0.8
        assert v.exchanges > 0


def test_validate_sharded_rejections():
    ok = _scenario()
    validate_sharded(ok, 2)  # baseline: accepted
    cases = [
        (_scenario(engine="reference"), 2),
        (_scenario(topology="ring"), 2),
        (ok, 0),
        (ok, 33),
    ]
    for scenario, shards in cases:
        with pytest.raises(ConfigurationError, match="sharded execution"):
            validate_sharded(scenario, shards)
