"""ShardPlan: balanced contiguous partition with arithmetic ownership."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sharding import ShardPlan
from repro.utils.exceptions import ConfigurationError


def test_blocks_cover_id_space_exactly():
    plan = ShardPlan(nodes=10, shards=3)
    ids = np.concatenate([plan.ids_of(s) for s in range(plan.shards)])
    assert ids.tolist() == list(range(10))


@pytest.mark.parametrize("nodes,shards", [(10, 3), (7, 7), (100, 4), (5, 1)])
def test_balance_within_one(nodes, shards):
    plan = ShardPlan(nodes=nodes, shards=shards)
    sizes = [plan.size(s) for s in range(shards)]
    assert sum(sizes) == nodes
    assert max(sizes) - min(sizes) <= 1
    # the larger blocks come first
    assert sizes == sorted(sizes, reverse=True)


def test_owner_of_matches_blocks():
    plan = ShardPlan(nodes=10, shards=3)
    owners = plan.owner_of(np.arange(10))
    expected = np.concatenate(
        [np.full(plan.size(s), s) for s in range(plan.shards)]
    )
    np.testing.assert_array_equal(owners, expected)
    # boundary ids specifically
    assert plan.owner_of(np.array([3, 4, 6, 7])).tolist() == [0, 1, 1, 2]


def test_block_bounds_are_half_open():
    plan = ShardPlan(nodes=10, shards=3)
    assert [plan.block(s) for s in range(3)] == [(0, 4), (4, 7), (7, 10)]


def test_invalid_plans_rejected():
    with pytest.raises(ConfigurationError):
        ShardPlan(nodes=0, shards=1)
    with pytest.raises(ConfigurationError):
        ShardPlan(nodes=4, shards=5)
    with pytest.raises(ConfigurationError):
        ShardPlan(nodes=4, shards=0)
    with pytest.raises(ConfigurationError):
        ShardPlan(nodes=4, shards=2).block(2)
