"""Spool-mode sharded runs: process fabric equivalence and crash replay.

The spool fabric must be *bit-identical* to the in-process fabric (the
exchange is deterministic and application order is sorted by source
shard), and a shard worker killed mid-run must be respawned and replay
the message log to the same record.
"""

from __future__ import annotations

import pytest

from repro.scenario import Scenario
from repro.sharding import run_sharded
from repro.sharding.coordinator import FAULT_ENV, run_sharded_detailed


def _scenario() -> Scenario:
    return Scenario(
        function="sphere",
        nodes=24,
        total_evaluations=2880,
        max_cycles=30,
        engine="fast",
        repetitions=1,
        seed=19,
    )


@pytest.fixture(scope="module")
def inproc_record():
    return run_sharded(_scenario(), repetition=0, shards=2)


def test_spool_run_bit_identical_to_in_process(tmp_path, inproc_record):
    rec = run_sharded(
        _scenario(), repetition=0, shards=2, spool=tmp_path / "spool"
    )
    assert rec == inproc_record


def test_killed_shard_worker_replays_to_same_record(
    tmp_path, monkeypatch, inproc_record
):
    """SIGKILL one shard mid-run; the respawn replays the spool log."""
    monkeypatch.setenv(FAULT_ENV, "1:7")
    spool = tmp_path / "spool"
    rec, fragments = run_sharded_detailed(
        _scenario(), repetition=0, shards=2, spool=spool
    )
    # the fault genuinely fired (the marker is the once-only latch)
    assert (spool / "fault-1.fired").exists()
    assert rec == inproc_record
    assert len(fragments) == 2
    assert all(f["cycles"] == rec.cycles for f in fragments)


def test_fragments_carry_throughput(tmp_path):
    _, fragments = run_sharded_detailed(
        _scenario(), repetition=0, shards=2, spool=tmp_path / "spool"
    )
    for fragment in fragments:
        assert fragment["elapsed"] > 0
        assert fragment["node_cycles_per_second"] > 0
        assert fragment["nodes"] == 12
