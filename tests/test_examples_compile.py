"""Guard: every example parses, resolves its imports, and *runs*.

Compiling and resolving imports catches renamed APIs in milliseconds;
actually executing each script (in its ``--tiny`` mode: n ≤ 8, per-node
budgets ≤ 200) catches the drift that compilation cannot — changed
result shapes, renamed fields, broken facade wiring.  Every example is
required to support ``--tiny``.
"""

from __future__ import annotations

import ast
import importlib
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_parses(path):
    source = path.read_text()
    ast.parse(source, filename=str(path))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_resolve(path):
    """Every `from repro...` / `import repro...` target must exist."""
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if not node.module.startswith("repro"):
                continue
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: `from {node.module} import {alias.name}` "
                    "refers to a missing attribute"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    importlib.import_module(alias.name)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_supports_tiny_mode(path):
    """Examples must read ``--tiny`` so the execution smoke stays fast."""
    assert "--tiny" in path.read_text(), (
        f"{path.name} must support a --tiny smoke mode"
    )


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_executes_tiny(path):
    """Run the example end-to-end with smoke parameters."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(path), "--tiny"],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{path.name} failed in --tiny mode:\n"
        f"--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{path.name} produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the deliverable requires at least three examples"
