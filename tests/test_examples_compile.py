"""Guard: every example script parses and its imports resolve.

Running the full examples takes minutes; compiling them and resolving
their imports catches the common bit-rot (renamed APIs, moved modules)
in milliseconds.
"""

from __future__ import annotations

import ast
import importlib
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_parses(path):
    source = path.read_text()
    ast.parse(source, filename=str(path))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_resolve(path):
    """Every `from repro...` / `import repro...` target must exist."""
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if not node.module.startswith("repro"):
                continue
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: `from {node.module} import {alias.name}` "
                    "refers to a missing attribute"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    importlib.import_module(alias.name)


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the deliverable requires at least three examples"
