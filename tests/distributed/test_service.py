"""End-to-end distributed sweeps pinned equal to sequential execution."""

from __future__ import annotations

import pytest

from repro.distributed.jobs import execute_job, jobs_for_sweep
from repro.distributed.service import (
    collect_from_spool,
    collect_results,
    run_sweep_jobs,
)
from repro.distributed.spool import JobQueue
from repro.scenario import ExecutionPolicy, Scenario, Session
from repro.utils.exceptions import SimulationError


def make(**overrides) -> Scenario:
    base = dict(
        function="sphere", nodes=4, particles_per_node=4,
        total_evaluations=400, gossip_cycle=4, repetitions=2, seed=9,
    )
    base.update(overrides)
    return Scenario(**base)


def sweep_points() -> list[Scenario]:
    return [make(), make(gossip_cycle=2), make(function="f2")]


@pytest.fixture(scope="module")
def sequential() -> list:
    return [Session(s).run() for s in sweep_points()]


def assert_pinned_equal(results, sequential) -> None:
    """Same records, same deterministic point order as the sequential run."""
    assert [r.scenario for r in results] == [r.scenario for r in sequential]
    assert [r.records for r in results] == [r.records for r in sequential]


class TestInlineService:
    def test_equal_to_sequential(self, sequential):
        assert_pinned_equal(run_sweep_jobs(sweep_points()), sequential)

    def test_progress_fires_once_per_point(self):
        seen = []
        run_sweep_jobs(
            sweep_points(),
            progress=lambda i, s, r: seen.append((i, len(r.records))),
        )
        assert sorted(seen) == [(0, 2), (1, 2), (2, 2)]

    def test_empty_sweep(self):
        assert run_sweep_jobs([]) == []

    def test_rejects_unserializable_scenarios(self):
        with pytest.raises(ValueError):
            run_sweep_jobs([make(topology=lambda nid: None)])

    def test_rejects_invalid_workers(self):
        with pytest.raises(ValueError):
            run_sweep_jobs(sweep_points(), policy=ExecutionPolicy(workers=0))

    def test_rejects_loose_workers_kwarg(self):
        with pytest.raises(TypeError):
            run_sweep_jobs(sweep_points(), workers=2)


class TestProcessPool:
    def test_two_workers_equal_to_sequential(self, sequential):
        """Cross-point scheduling: 6 jobs fill a 2-process pool."""
        assert_pinned_equal(
            run_sweep_jobs(
                sweep_points(), policy=ExecutionPolicy(workers=2)
            ),
            sequential,
        )


class TestSpoolService:
    def test_two_process_spool_sweep_equal_to_sequential(
        self, tmp_path, sequential
    ):
        """The acceptance pin: a spool-backed sweep over two worker
        processes returns the sequential ``Session.sweep`` output —
        same records, same deterministic point order — even though
        every record crossed process boundaries as JSON."""
        results = run_sweep_jobs(
            sweep_points(),
            policy=ExecutionPolicy(
                workers=2, spool=str(tmp_path), stale_after=5.0
            ),
        )
        assert_pinned_equal(results, sequential)

    def test_spool_sweep_resumes_partial_results(self, tmp_path, sequential):
        """Jobs already completed in the spool are not re-run."""
        points = sweep_points()
        jobs = jobs_for_sweep(points)
        queue = JobQueue(tmp_path)
        # Pre-complete one job by hand (simulating an earlier,
        # interrupted sweep).
        queue.submit(jobs[0])
        claim = queue.claim()
        queue.complete(claim, execute_job(jobs[0]), elapsed_seconds=0.1)
        results = run_sweep_jobs(
            points, policy=ExecutionPolicy(workers=1, spool=str(tmp_path))
        )
        assert_pinned_equal(results, sequential)

    def test_stranded_claim_recovered_by_coordinator(
        self, tmp_path, sequential
    ):
        """A job claimed by a worker that died before the sweep started
        is requeued (dead-owner probe) and finished, not stranded."""
        from repro.distributed.spool import worker_identity

        points = sweep_points()
        jobs = jobs_for_sweep(points)
        queue = JobQueue(tmp_path)
        queue.submit(jobs[0])
        # The claimant's recorded pid does not exist: a dead worker.
        assert queue.claim(owner=worker_identity(999_999_999)) is not None
        results = run_sweep_jobs(
            points,
            policy=ExecutionPolicy(
                workers=1, spool=str(tmp_path), stale_after=60.0
            ),
        )
        assert_pinned_equal(results, sequential)

    def test_collect_from_spool_incomplete_raises(self, tmp_path):
        points = sweep_points()
        queue = JobQueue(tmp_path)
        for job in jobs_for_sweep(points):
            queue.submit(job)
        with pytest.raises(SimulationError, match="no results"):
            collect_from_spool(queue, points)

    def test_collect_from_spool_dead_letter_raises(self, tmp_path):
        points = [make(nodes=4, total_evaluations=2, repetitions=1)]
        queue = JobQueue(tmp_path, max_retries=0)
        for job in jobs_for_sweep(points):
            queue.submit(job)
        from repro.distributed.worker import run_worker

        run_worker(queue)
        with pytest.raises(SimulationError, match="dead-lettered"):
            collect_from_spool(queue, points)


class TestCollectResults:
    def test_reassembles_out_of_completion_order(self, sequential):
        points = sweep_points()
        jobs = jobs_for_sweep(points)
        records_by_job = {}
        for job in reversed(jobs):  # completion order != sweep order
            records_by_job[job.job_id] = execute_job(job)
        assert_pinned_equal(
            collect_results(points, jobs, records_by_job), sequential
        )

    def test_missing_job_raises(self):
        points = sweep_points()
        jobs = jobs_for_sweep(points)
        with pytest.raises(SimulationError, match="incomplete"):
            collect_results(points, jobs, {})

    def test_record_count_mismatch_raises(self):
        points = [make(repetitions=1)]
        jobs = jobs_for_sweep(points)
        with pytest.raises(SimulationError, match="record"):
            collect_results(points, jobs, {jobs[0].job_id: []})


class TestSessionSweepIntegration:
    def test_sweep_workers_equal_to_sequential(self):
        session = Session(make())
        seq = session.sweep(gossip_cycle=[4, 2])
        par = session.sweep(
            policy=ExecutionPolicy(workers=2), gossip_cycle=[4, 2]
        )
        assert_pinned_equal(par, seq)

    def test_sweep_spool_equal_to_sequential(self, tmp_path):
        session = Session(make())
        seq = session.sweep(gossip_cycle=[4, 2])
        spooled = session.sweep(
            policy=ExecutionPolicy(workers=2, spool=str(tmp_path)),
            gossip_cycle=[4, 2],
        )
        assert_pinned_equal(spooled, seq)

    def test_sweep_fault_tolerance_knobs_pass_through(self, tmp_path):
        session = Session(make())
        seq = session.sweep(gossip_cycle=[4, 2])
        par = session.sweep(
            policy=ExecutionPolicy(
                workers=2, spool=str(tmp_path),
                heartbeat_interval=0.1, job_timeout=120.0,
            ),
            gossip_cycle=[4, 2],
        )
        assert_pinned_equal(par, seq)

    def test_sweep_progress_covers_every_point(self):
        seen = []
        Session(make()).sweep(
            policy=ExecutionPolicy(workers=2),
            progress=lambda s, r: seen.append(s.gossip_cycle),
            gossip_cycle=[4, 2],
        )
        assert sorted(seen) == [2, 4]


class TestCli:
    def test_submit_worker_status_collect_flow(self, tmp_path, capsys):
        import json

        from repro.distributed.__main__ import main

        points = sweep_points()
        scenarios_file = tmp_path / "sweep.json"
        scenarios_file.write_text(
            json.dumps([s.to_dict() for s in points])
        )
        spool = str(tmp_path / "spool")

        assert main(["submit", "--spool", spool,
                     "--scenarios", str(scenarios_file)]) == 0
        out = capsys.readouterr().out
        assert "submitted 6 of 6" in out

        # Re-submitting is a no-op (resumable).
        assert main(["submit", "--spool", spool,
                     "--scenarios", str(scenarios_file)]) == 0
        assert "submitted 0 of 6" in capsys.readouterr().out

        assert main(["worker", "--spool", spool, "--quiet"]) == 0
        assert "executed 6 job(s)" in capsys.readouterr().out

        assert main(["status", "--spool", spool]) == 0
        status_out = capsys.readouterr().out
        assert "results=6" in status_out
        # The worker published a status sidecar; status surfaces it.
        assert "worker " in status_out
        assert "jobs=6" in status_out

        csv_path = tmp_path / "runs.csv"
        assert main(["collect", "--spool", spool,
                     "--scenarios", str(scenarios_file),
                     "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("mean quality") == 3
        assert csv_path.read_text().startswith("function,")

    def test_status_json_is_machine_readable(self, tmp_path, capsys):
        import json

        from repro.distributed.__main__ import main

        points = [sweep_points()[0]]
        scenarios_file = tmp_path / "sweep.json"
        scenarios_file.write_text(
            json.dumps([s.to_dict() for s in points])
        )
        spool = str(tmp_path / "spool")
        assert main(["submit", "--spool", spool,
                     "--scenarios", str(scenarios_file)]) == 0
        capsys.readouterr()

        assert main(["status", "--spool", spool, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert sorted(doc) == ["claims", "counts", "workers"]
        assert doc["counts"]["pending"] == 2
        assert doc["claims"] == [] and doc["workers"] == []

        assert main(["worker", "--spool", spool, "--quiet"]) == 0
        capsys.readouterr()
        assert main(["status", "--spool", spool, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["results"] == 2
        (worker_status,) = doc["workers"]
        assert worker_status["jobs_done"] == 2

    def test_status_watch_redraws_until_interrupted(
            self, tmp_path, capsys, monkeypatch):
        import time

        from repro.distributed.__main__ import main

        spool = str(tmp_path / "spool")
        JobQueue(spool)
        sleeps = []

        def fake_sleep(seconds):
            sleeps.append(seconds)
            if len(sleeps) >= 2:
                raise KeyboardInterrupt

        monkeypatch.setattr(time, "sleep", fake_sleep)
        assert main(["status", "--spool", spool,
                     "--watch", "--interval", "0.5"]) == 0
        out = capsys.readouterr().out
        # One ANSI clear-and-home per redraw, Ctrl-C exits cleanly.
        assert out.count("\x1b[2J\x1b[H") == 2
        assert sleeps == [0.5, 0.5]

    def test_status_watch_rejects_nonpositive_interval(self, tmp_path):
        from repro.distributed.__main__ import main

        spool = str(tmp_path / "spool")
        JobQueue(spool)
        with pytest.raises(SystemExit):
            main(["status", "--spool", spool, "--watch", "--interval", "0"])

    def test_requeue_subcommand_recovers_dead_claims(self, tmp_path, capsys):
        from repro.distributed.__main__ import main
        from repro.distributed.spool import worker_identity

        points = [sweep_points()[0]]
        spool = str(tmp_path / "spool")
        queue = JobQueue(spool)
        for job in jobs_for_sweep(points):
            queue.submit(job)
        queue.claim(owner=worker_identity(999_999_999))  # dead worker

        assert main(["requeue", "--spool", spool]) == 0
        assert "requeued 1 job(s)" in capsys.readouterr().out
        assert len(queue.pending_ids()) == 2
        assert queue.claimed_ids() == []

    def test_requeue_subcommand_retry_failed_flag(self, tmp_path, capsys):
        from repro.distributed.__main__ import main

        points = [sweep_points()[0].with_(repetitions=1)]
        spool = str(tmp_path / "spool")
        queue = JobQueue(spool, max_retries=0)
        for job in jobs_for_sweep(points):
            queue.submit(job)
        queue.release(queue.claim(), error="boom")
        assert len(queue.failed_ids()) == 1

        assert main(["requeue", "--spool", spool]) == 0
        capsys.readouterr()
        assert len(queue.failed_ids()) == 1  # untouched without the flag

        assert main(["requeue", "--spool", spool, "--retry-failed"]) == 0
        assert "requeued 1 job(s)" in capsys.readouterr().out
        assert queue.failed_ids() == []
        assert len(queue.pending_ids()) == 1
