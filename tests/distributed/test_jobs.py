"""SweepJob decomposition and JSON round-trip."""

from __future__ import annotations

import json

import pytest

from repro.distributed.jobs import SweepJob, execute_job, jobs_for_sweep
from repro.scenario import Scenario, Session


def make(**overrides) -> Scenario:
    base = dict(
        function="sphere", nodes=4, particles_per_node=4,
        total_evaluations=400, gossip_cycle=4, repetitions=3, seed=7,
    )
    base.update(overrides)
    return Scenario(**base)


class TestSweepJob:
    def test_json_round_trip(self):
        job = SweepJob(
            point_index=2, scenario=make().to_dict(), repetitions=(0, 1)
        )
        restored = SweepJob.from_dict(json.loads(json.dumps(job.to_dict())))
        assert restored == job
        assert restored.job_id == job.job_id

    def test_job_id_deterministic_and_scenario_scoped(self):
        a = SweepJob(point_index=0, scenario=make().to_dict(), repetitions=(0,))
        b = SweepJob(point_index=0, scenario=make().to_dict(), repetitions=(0,))
        other = SweepJob(
            point_index=0, scenario=make(seed=8).to_dict(), repetitions=(0,)
        )
        assert a.job_id == b.job_id
        # Different sweeps sharing a spool directory must not collide.
        assert a.job_id != other.job_id

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepJob(point_index=-1, scenario=make().to_dict(), repetitions=(0,))
        with pytest.raises(ValueError):
            SweepJob(point_index=0, scenario=make().to_dict(), repetitions=())
        with pytest.raises(ValueError):
            SweepJob(point_index=0, scenario=make().to_dict(), repetitions=(1, 1))

    def test_from_dict_rejects_unknown_and_missing_fields(self):
        payload = SweepJob(
            point_index=0, scenario=make().to_dict(), repetitions=(0,)
        ).to_dict()
        with pytest.raises(ValueError, match="unknown"):
            SweepJob.from_dict({**payload, "bogus": 1})
        del payload["repetitions"]
        with pytest.raises(ValueError, match="repetitions"):
            SweepJob.from_dict(payload)


class TestJobsForSweep:
    def test_one_job_per_repetition_by_default(self):
        scenarios = [make(), make(gossip_cycle=2)]
        jobs = jobs_for_sweep(scenarios)
        assert len(jobs) == 6
        assert [(j.point_index, j.repetitions) for j in jobs] == [
            (0, (0,)), (0, (1,)), (0, (2,)),
            (1, (0,)), (1, (1,)), (1, (2,)),
        ]
        assert len({j.job_id for j in jobs}) == 6

    def test_reps_per_job_chunks(self):
        jobs = jobs_for_sweep([make()], reps_per_job=2)
        assert [j.repetitions for j in jobs] == [(0, 1), (2,)]

    def test_accepts_scenario_dicts(self):
        jobs = jobs_for_sweep([make().to_dict()])
        assert len(jobs) == 3

    def test_invalid_reps_per_job(self):
        with pytest.raises(ValueError):
            jobs_for_sweep([make()], reps_per_job=0)


class TestExecuteJob:
    def test_round_trips_scenario_and_matches_direct_run(self):
        scenario = make()
        job = jobs_for_sweep([scenario], reps_per_job=3)[0]
        records = execute_job(job)
        direct = [Session(scenario).run_one(rep) for rep in range(3)]
        assert records == direct
