"""Spool-queue semantics: atomic claim, retry, killed-worker recovery."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.distributed.jobs import SweepJob, execute_job, jobs_for_sweep
from repro.distributed.spool import (
    JobQueue,
    SpoolCorruptionError,
    with_retries,
    worker_identity,
)
from repro.distributed.worker import run_worker
from repro.scenario import ExecutionPolicy, Scenario

#: A pid far above any real pid_max: worker_identity(_DEAD_PID) names a
#: process on this host that provably does not exist.
_DEAD_PID = 999_999_999

_SRC = str(Path(repro.__file__).resolve().parents[1])


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def make(**overrides) -> Scenario:
    base = dict(
        function="sphere", nodes=4, particles_per_node=4,
        total_evaluations=400, gossip_cycle=4, repetitions=2, seed=5,
    )
    base.update(overrides)
    return Scenario(**base)


def submit_one(queue: JobQueue, **overrides) -> SweepJob:
    job = jobs_for_sweep([make(**overrides)], reps_per_job=2)[0]
    queue.submit(job)
    return job


class TestQueueBasics:
    def test_submit_claim_complete(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = submit_one(queue)
        assert queue.pending_ids() == [job.job_id]

        claim = queue.claim()
        assert claim is not None and claim.job == job
        assert claim.attempts == 0
        assert queue.pending_ids() == []
        assert queue.claimed_ids() == [job.job_id]

        queue.complete(claim, execute_job(job), elapsed_seconds=1.5)
        assert queue.claimed_ids() == []
        assert queue.result_ids() == [job.job_id]
        payload = queue.load_result(job.job_id)
        assert payload["elapsed_seconds"] == 1.5
        assert len(queue.load_records(job.job_id)) == 2

    def test_claim_empty_returns_none(self, tmp_path):
        assert JobQueue(tmp_path).claim() is None

    def test_submit_is_idempotent_across_states(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = submit_one(queue)
        assert queue.submit(job) is False  # already pending
        claim = queue.claim()
        assert queue.submit(job) is False  # claimed
        queue.complete(claim, execute_job(job))
        assert queue.submit(job) is False  # finished: resumable sweeps
        assert queue.pending_ids() == []

    def test_release_requeues_with_attempt_bump(self, tmp_path):
        queue = JobQueue(tmp_path, max_retries=2)
        job = submit_one(queue)
        claim = queue.claim()
        assert queue.release(claim, error="boom") is True
        assert queue.pending_ids() == [job.job_id]
        assert queue.claim().attempts == 1

    def test_release_dead_letters_past_max_retries(self, tmp_path):
        queue = JobQueue(tmp_path, max_retries=1)
        job = submit_one(queue)
        for expected_attempts in (0, 1):
            claim = queue.claim()
            assert claim.attempts == expected_attempts
            queue.release(claim, error="boom")
        assert queue.pending_ids() == []
        assert queue.failed_ids() == [job.job_id]
        assert queue.load_failed(job.job_id)["error"] == "boom"

    def test_counts_snapshot(self, tmp_path):
        queue = JobQueue(tmp_path)
        submit_one(queue)
        assert queue.counts() == {
            "pending": 1, "claimed": 0, "results": 0, "failed": 0,
        }


class TestKilledWorker:
    def test_stale_claim_requeued_and_finished_by_next_worker(self, tmp_path):
        """A worker that dies after claiming must not strand the job."""
        queue = JobQueue(tmp_path)
        job = submit_one(queue)

        # A real separate process claims the job and is "killed"
        # (exits without completing or releasing).
        script = (
            "import os\n"
            "from repro.distributed.spool import JobQueue\n"
            f"claim = JobQueue({str(tmp_path)!r}).claim()\n"
            "os._exit(0 if claim is not None else 3)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], env=_env(), timeout=120
        )
        assert proc.returncode == 0
        assert queue.pending_ids() == []
        assert queue.claimed_ids() == [job.job_id]
        assert queue.claim() is None  # nothing claimable while stranded

        # The owner probe sees the claimant's pid is gone and requeues.
        assert queue.requeue_abandoned() == [job.job_id]
        assert queue.pending_ids() == [job.job_id]

        # The next worker picks it up and finishes the sweep.
        assert run_worker(queue) == 1
        assert queue.result_ids() == [job.job_id]
        assert queue.load_result(job.job_id)["attempts"] == 1

    def test_requeue_stale_respects_age(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = submit_one(queue)
        queue.claim()
        assert queue.requeue_stale(3600.0) == []  # fresh claim untouched
        assert queue.requeue_stale(0.0) == [job.job_id]

    def test_claim_age_measured_from_claim_not_submit(self, tmp_path):
        """Regression: the pending→claimed rename preserves mtime, so
        staleness used to measure time since *submit* — a job that sat
        queued for a while looked stale the instant it was claimed."""
        queue = JobQueue(tmp_path)
        job = submit_one(queue)
        pending = tmp_path / "pending" / f"{job.job_id}.json"
        long_ago = time.time() - 3600.0
        os.utime(pending, (long_ago, long_ago))  # queued for an hour
        queue.claim()
        assert queue.requeue_stale(60.0) == []  # claimed seconds ago

    def test_requeue_abandoned_dead_local_owner(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = submit_one(queue)
        queue.claim(owner=worker_identity(_DEAD_PID))
        assert queue.requeue_abandoned() == [job.job_id]
        assert queue.claim().attempts == 1

    def test_requeue_abandoned_leaves_live_owner(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = submit_one(queue)
        queue.claim()  # owned by this live process
        assert queue.requeue_abandoned() == []
        assert queue.claimed_ids() == [job.job_id]

    def test_recovery_scoped_to_job_ids(self, tmp_path):
        """A coordinator must never requeue another sweep's claims on a
        shared spool — both recovery paths honor the job-id scope."""
        queue = JobQueue(tmp_path)
        mine = submit_one(queue, seed=1)
        other = submit_one(queue, seed=2)
        assert queue.claim(owner=worker_identity(_DEAD_PID)) is not None
        assert queue.claim(owner=worker_identity(_DEAD_PID)) is not None

        assert queue.requeue_abandoned(job_ids={mine.job_id}) == [mine.job_id]
        assert queue.claimed_ids() == [other.job_id]
        assert queue.requeue_stale(0.0, job_ids=set()) == []
        assert queue.requeue_stale(0.0, job_ids={other.job_id}) == [
            other.job_id
        ]

    def test_retry_failed_unblocks_resume(self, tmp_path):
        """Dead letters would otherwise block a resumed sweep forever
        (submit skips them, collect raises)."""
        queue = JobQueue(tmp_path, max_retries=0)
        job = submit_one(queue)
        queue.release(queue.claim(), error="transient")
        assert queue.failed_ids() == [job.job_id]
        assert queue.submit(job) is False  # resume cannot get past it

        assert queue.retry_failed() == [job.job_id]
        assert queue.failed_ids() == []
        claim = queue.claim()
        assert claim.attempts == 0  # a genuinely fresh start
        queue.complete(claim, execute_job(job))
        assert queue.result_ids() == [job.job_id]

    def test_requeue_abandoned_explicit_owner_list(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = submit_one(queue)
        queue.claim(owner="some-other-host:123")
        # Unprobeable remote owner: left for the age policy...
        assert queue.requeue_abandoned() == []
        # ...unless the caller knows that worker is gone.
        assert queue.requeue_abandoned(
            owners={"some-other-host:123"}
        ) == [job.job_id]


class TestWorkerLoop:
    def test_drains_and_reports_count(self, tmp_path):
        queue = JobQueue(tmp_path)
        for seed in (1, 2):
            submit_one(queue, seed=seed)
        messages = []
        assert run_worker(queue, log=messages.append) == 2
        assert queue.counts()["results"] == 2
        assert any("done" in m for m in messages)

    def test_idle_timeout_exits_empty_queue(self, tmp_path):
        queue = JobQueue(tmp_path)
        assert run_worker(queue, poll_interval=0.01, idle_timeout=0.05) == 0

    def test_idle_worker_recovers_dead_owner_claim(self, tmp_path):
        """A sibling worker's abandoned claim is found and executed
        without any coordinator stepping in."""
        queue = JobQueue(tmp_path)
        job = submit_one(queue)
        queue.claim(owner=worker_identity(_DEAD_PID))  # killed sibling
        assert run_worker(queue, poll_interval=0.01) == 1
        assert queue.result_ids() == [job.job_id]

    def test_max_jobs_cap(self, tmp_path):
        queue = JobQueue(tmp_path)
        for seed in (1, 2):
            submit_one(queue, seed=seed)
        assert run_worker(queue, max_jobs=1) == 1
        assert queue.counts()["pending"] == 1

    def test_failing_job_is_retried_then_dead_lettered(self, tmp_path):
        queue = JobQueue(tmp_path, max_retries=1)
        # Valid spec, infeasible at run time: budget < 1 eval per node.
        job = jobs_for_sweep(
            [make(nodes=4, total_evaluations=2, repetitions=1)]
        )[0]
        queue.submit(job)
        assert run_worker(queue) == 0
        assert queue.failed_ids() == [job.job_id]
        assert "ConfigurationError" in queue.load_failed(job.job_id)["error"]


class TestCrashWindowEdges:
    """The windows a host crash or pid churn can leave behind."""

    def test_truncated_result_surfaces_clean_error(self, tmp_path):
        """Satellite pin: a torn result JSON names the job, never a
        raw JSONDecodeError."""
        queue = JobQueue(tmp_path)
        job = submit_one(queue)
        queue.complete(queue.claim(), execute_job(job))
        path = tmp_path / "results" / f"{job.job_id}.json"
        path.write_text(path.read_text()[:40])  # torn mid-payload
        with pytest.raises(SpoolCorruptionError, match=job.job_id):
            queue.load_result(job.job_id)
        with pytest.raises(SpoolCorruptionError, match="truncated or corrupt"):
            queue.load_records(job.job_id)

    def test_corrupt_pending_entry_quarantined_on_claim(self, tmp_path):
        """A truncated pending file cannot wedge the claim scan: it is
        dead-lettered loudly and claiming moves on to real work."""
        queue = JobQueue(tmp_path)
        (tmp_path / "pending" / "p99999-deadbeef-r00000.json").write_text(
            '{"job": {"point_index"'
        )
        assert queue.claim() is None  # quarantined, not claimable, no crash
        failed = queue.failed_ids()
        assert failed == ["p99999-deadbeef-r00000"]
        assert "truncated or corrupt" in queue.load_failed(failed[0])["error"]
        # retry_failed cannot resurrect it (no job payload survived) …
        assert queue.retry_failed() == []
        # … and it never shadows real work.
        job = submit_one(queue)
        claim = queue.claim()
        assert claim is not None and claim.job == job

    def test_double_complete_is_idempotent(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = submit_one(queue)
        claim = queue.claim()
        records = execute_job(job)
        queue.complete(claim, records, elapsed_seconds=1.0)
        queue.complete(claim, records, elapsed_seconds=2.0)  # duplicate wins race
        assert queue.result_ids() == [job.job_id]
        assert len(queue.load_records(job.job_id)) == 2
        assert queue.claimed_ids() == []

    def test_requeue_abandoned_spares_recycled_pid(self, tmp_path):
        """Satellite pin: a recorded owner whose pid was reused by an
        unrelated process looks alive to the probe — the claim must be
        left alone (never steal what might be live) and recovered by
        the heartbeat-age policy instead (no stamps from an impostor).
        """
        queue = JobQueue(tmp_path)
        job = submit_one(queue)
        # pid 1 exists on every host but is certainly not our worker:
        # the worst-case pid-reuse impostor.
        queue.claim(owner=worker_identity(1))
        assert queue.requeue_abandoned() == []
        assert queue.claimed_ids() == [job.job_id]

        # The impostor never heartbeats, so staleness recovers the job.
        path = tmp_path / "claimed" / f"{job.job_id}.json"
        long_ago = time.time() - 3600.0
        os.utime(path, (long_ago, long_ago))
        assert queue.requeue_stale(60.0) == [job.job_id]

    def test_retry_failed_resets_attempt_counters(self, tmp_path):
        """Satellite pin: an operator retry is a genuinely fresh start
        — the pending payload, not just the next claim, shows zero
        attempts."""
        queue = JobQueue(tmp_path, max_retries=0)
        job = submit_one(queue)
        queue.release(queue.claim(), error="boom")
        assert queue.retry_failed() == [job.job_id]
        payload = json.loads(
            (tmp_path / "pending" / f"{job.job_id}.json").read_text()
        )
        assert payload["attempts"] == 0
        assert payload["last_error"] == "boom"


class TestReleaseModes:
    def test_permanent_release_dead_letters_immediately(self, tmp_path):
        queue = JobQueue(tmp_path, max_retries=5)
        job = submit_one(queue)
        assert queue.release(
            queue.claim(), error="ConfigurationError: bad", permanent=True
        ) is False
        assert queue.failed_ids() == [job.job_id]
        assert queue.pending_ids() == []

    def test_uncounted_release_preserves_attempts(self, tmp_path):
        """Graceful shutdown must not consume the retry budget — even
        at max_retries=0 the job goes back to pending, not failed."""
        queue = JobQueue(tmp_path, max_retries=0)
        job = submit_one(queue)
        assert queue.release(
            queue.claim(), error="worker shutdown (signal 15)",
            count_attempt=False,
        ) is True
        assert queue.pending_ids() == [job.job_id]
        assert queue.claim().attempts == 0


class TestHeartbeatStamp:
    def test_heartbeat_refreshes_claim_mtime(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = submit_one(queue)
        claim = queue.claim()
        path = tmp_path / "claimed" / f"{job.job_id}.json"
        long_ago = time.time() - 3600.0
        os.utime(path, (long_ago, long_ago))
        assert queue.heartbeat(claim) is True
        assert time.time() - path.stat().st_mtime < 60.0
        assert queue.requeue_stale(60.0) == []

    def test_heartbeat_on_lost_claim_returns_false(self, tmp_path):
        queue = JobQueue(tmp_path)
        submit_one(queue)
        claim = queue.claim()
        queue.complete(claim, execute_job(claim.job))
        assert queue.heartbeat(claim) is False

    def test_claim_info_reports_owner_age_attempts(self, tmp_path):
        queue = JobQueue(tmp_path)
        job = submit_one(queue)
        queue.claim(owner="somehost:42")
        (info,) = queue.claim_info()
        assert info["job_id"] == job.job_id
        assert info["owner"] == "somehost:42"
        assert info["attempts"] == 0
        assert 0.0 <= info["heartbeat_age"] < 60.0


class TestWorkerStatusSidecars:
    def test_record_and_read_back(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.record_worker_status(
            "hostA:1", jobs_done=3, retries=1, current_job=None
        )
        (status,) = queue.worker_statuses()
        assert status["worker"] == "hostA:1"
        assert status["jobs_done"] == 3
        assert status["retries"] == 1
        assert status["heartbeat_age"] < 60.0

    def test_run_worker_publishes_status(self, tmp_path):
        queue = JobQueue(tmp_path)
        submit_one(queue)
        run_worker(queue, policy=ExecutionPolicy(heartbeat_interval=0.05))
        (status,) = queue.worker_statuses()
        assert status["worker"] == worker_identity()
        assert status["jobs_done"] == 1
        assert status["current_job"] is None


class TestDurableWrites:
    def test_atomic_write_fsyncs_file_and_directory(self, tmp_path, monkeypatch):
        """Satellite pin: the temp file is fsynced before the rename
        and the directory after it — the crash window the seed left
        open."""
        from repro.distributed import spool as spool_mod

        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(spool_mod.os, "fsync", recording_fsync)
        spool_mod._write_json_atomic(tmp_path / "x.json", {"ok": 1})
        assert len(synced) >= 2  # temp file + containing directory
        assert json.loads((tmp_path / "x.json").read_text()) == {"ok": 1}


class TestWithRetries:
    def test_returns_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("blip")
            return "ok"

        assert with_retries(flaky, base_delay=0.001) == "ok"
        assert len(calls) == 3

    def test_exhausted_attempts_raise_last_error(self):
        def always():
            raise OSError("dead filesystem")

        with pytest.raises(OSError, match="dead filesystem"):
            with_retries(always, attempts=3, base_delay=0.001)

    def test_non_retryable_errors_propagate_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("deterministic")

        with pytest.raises(ValueError):
            with_retries(broken, base_delay=0.001)
        assert len(calls) == 1

    def test_invalid_attempts(self):
        with pytest.raises(ValueError):
            with_retries(lambda: None, attempts=0)


class TestInvalidQueueArgs:
    def test_negative_max_retries(self, tmp_path):
        with pytest.raises(ValueError):
            JobQueue(tmp_path, max_retries=-1)
