"""Job payloads pin the *resolved* kernel backend before workers spawn.

The availability fallback (e.g. ``numba`` → ``numpy`` when the
dependency is missing) warns once per process; letting each spawned
worker re-run it would re-warn per job and — because job ids digest
the scenario payload — make submit/collect disagree on ids.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.kernels import resolve_backend_name
from repro.distributed.jobs import jobs_for_sweep
from repro.scenario.spec import Scenario


def _scenario(**overrides) -> Scenario:
    base = dict(
        function="sphere", nodes=8, total_evaluations=160,
        engine="fast", repetitions=2, seed=3,
    )
    base.update(overrides)
    return Scenario(**base)


@pytest.mark.parametrize("name", ["numpy", "numba"])
def test_payload_backend_is_resolved(name):
    jobs = jobs_for_sweep([_scenario(kernel_backend=name)])
    resolved = resolve_backend_name(name)
    assert all(job.scenario["kernel_backend"] == resolved for job in jobs)


def test_job_ids_agree_between_raw_and_resolved_submissions():
    """submit(raw) and collect(resolved) must digest to the same ids."""
    raw = jobs_for_sweep([_scenario(kernel_backend="numba")])
    pinned = jobs_for_sweep(
        [_scenario(kernel_backend=resolve_backend_name("numba"))]
    )
    assert [j.job_id for j in raw] == [j.job_id for j in pinned]


def test_unknown_backend_passes_through_to_fail_at_execution():
    payload = _scenario().to_dict()
    payload["kernel_backend"] = "no-such-backend"
    jobs = jobs_for_sweep([payload])
    assert jobs[0].scenario["kernel_backend"] == "no-such-backend"


def test_resolution_does_not_warn_twice():
    """The fallback warning is once-per-process; a second resolve of
    the same unavailable backend stays silent."""
    resolve_backend_name("numba")  # may or may not warn (first use)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        resolve_backend_name("numba")
