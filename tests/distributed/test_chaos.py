"""Chaos harness: sweeps survive injected faults and killed workers.

The acceptance pins of the fault-tolerant service live here:

* a sweep driven through a fault-injecting :class:`ChaosJobQueue`
  (transient IO errors, torn result writes, claim races, delays)
  completes **bit-identical** to the sequential run;
* a worker SIGKILLed mid-job strands nothing — a restarted worker
  recovers the claim and the collected sweep equals sequential;
* with heartbeats, ``stale_after`` set *below* the job duration
  reclaims only dead workers' claims (no live-claim theft);
* SIGTERM shuts a worker down gracefully: the in-flight claim is
  released without consuming a retry.

The kill-and-resume tests honor ``CHAOS_SPOOL_DIR`` (CI sets it so a
failing run's spool directory can be uploaded as an artifact).
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.distributed.chaos import (
    DEAD_PID,
    ChaosJobQueue,
    FaultInjector,
    FaultRates,
)
from repro.distributed.jobs import jobs_for_sweep
from repro.distributed.service import collect_from_spool
from repro.distributed.spool import ClaimHeartbeat, JobQueue, worker_identity
from repro.distributed.worker import run_worker
from repro.scenario import ExecutionPolicy, Scenario, Session

_SRC = str(Path(repro.__file__).resolve().parents[1])


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def make(**overrides) -> Scenario:
    base = dict(
        function="sphere", nodes=4, particles_per_node=4,
        total_evaluations=400, gossip_cycle=4, repetitions=2, seed=5,
    )
    base.update(overrides)
    return Scenario(**base)


@pytest.fixture
def chaos_spool(tmp_path, request):
    """A spool directory CI can upload on failure.

    With ``CHAOS_SPOOL_DIR`` set (the CI chaos-smoke job), the spool
    lives under that path and is left behind after the run — the
    workflow uploads it as an artifact only when the job fails.
    Without it (local runs), the spool is an ordinary tmp_path child.
    """
    root = os.environ.get("CHAOS_SPOOL_DIR")
    if root is None:
        yield tmp_path / "spool"
        return
    spool = Path(root) / request.node.name
    shutil.rmtree(spool, ignore_errors=True)  # never resume a stale spool
    spool.mkdir(parents=True, exist_ok=True)
    yield spool


def drain_with_restarts(
    queue: JobQueue, max_restarts: int = 40, **worker_kwargs
) -> int:
    """Run workers to completion, restarting after injected crashes.

    A worker whose spool-IO retries are exhausted dies with ``OSError``
    — exactly like a real worker losing its filesystem.  The operator
    move is: reclaim whatever the dead worker still held (its pid is
    *this* process, which is alive, so the heartbeat-age policy — not
    the owner probe — must free the claim) and start a new worker.
    """
    executed = 0
    for _ in range(max_restarts):
        try:
            executed += run_worker(
                queue,
                policy=ExecutionPolicy(heartbeat_interval=0.05),
                poll_interval=0.01,
                **worker_kwargs,
            )
        except OSError:
            queue.requeue_stale(0.0)  # our crashed worker's claims
            continue
        queue.requeue_stale(0.0)
        if not queue.pending_ids() and not queue.claimed_ids():
            return executed
    raise AssertionError("chaos sweep did not drain within the restart budget")


class TestFaultRates:
    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError, match="transient_error"):
            FaultRates(transient_error=1.5)
        with pytest.raises(ValueError, match="delay_seconds"):
            FaultRates(delay_seconds=-1.0)

    def test_injector_schedule_is_seeded(self):
        a = FaultInjector(FaultRates(transient_error=0.5), seed=42)
        b = FaultInjector(FaultRates(transient_error=0.5), seed=42)
        rolls = [(a.roll("transient_error", 0.5), b.roll("transient_error", 0.5))
                 for _ in range(64)]
        assert all(x == y for x, y in rolls)
        assert a.injected == b.injected
        assert 0 < a.injected["transient_error"] < 64

    def test_zero_rate_never_fires(self):
        injector = FaultInjector(FaultRates(), seed=0)
        assert not any(injector.roll("transient_error", 0.0) for _ in range(32))
        assert not injector.injected


class TestChaosSweep:
    def test_sweep_bit_identical_under_faults(self, tmp_path):
        """The chaos pin: every injected fault class fires, and the
        collected sweep still equals the sequential run bit-for-bit."""
        points = [make(seed=11), make(seed=12, gossip_cycle=2)]
        sequential = [Session(s).run() for s in points]

        injector = FaultInjector(
            FaultRates(
                transient_error=0.25,
                torn_result_write=0.3,
                claim_race=0.3,
                delay=0.2,
                delay_seconds=0.002,
            ),
            seed=1234,
        )
        queue = ChaosJobQueue(tmp_path, injector, max_retries=10)
        jobs = jobs_for_sweep(points)
        for job in jobs:
            queue.submit(job)

        drain_with_restarts(queue)

        for kind in ("transient_error", "torn_result_write", "claim_race"):
            assert injector.injected[kind] > 0, f"{kind} never fired"
        assert queue.failed_ids() == []

        # Collect through a clean queue: the spool's *contents* must
        # have healed, not just the wrapper's view of them.
        results = collect_from_spool(JobQueue(tmp_path), points)
        assert [r.records for r in results] == [
            r.records for r in sequential
        ]

    def test_transient_claim_errors_ride_out_backoff(self, tmp_path):
        """A fault that clears within the retry budget never surfaces."""

        class FailFirstN(FaultInjector):
            def __init__(self, n):
                super().__init__(FaultRates(transient_error=1.0), seed=0)
                self.remaining = n

            def roll(self, kind, rate):
                if kind == "transient_error" and self.remaining > 0:
                    self.remaining -= 1
                    self.injected[kind] += 1
                    return True
                return False

        queue = ChaosJobQueue(tmp_path, FailFirstN(3))
        queue.submit(jobs_for_sweep([make(repetitions=1)])[0])
        assert run_worker(queue, policy=ExecutionPolicy(heartbeat_interval=0.05)) == 1
        assert queue.counts()["results"] == 1

    def test_persistent_spool_failure_surfaces(self, tmp_path):
        """IO that never recovers exhausts the backoff and propagates —
        a worker must not spin forever against a dead filesystem."""
        queue = ChaosJobQueue(
            tmp_path, FaultInjector(FaultRates(transient_error=1.0), seed=0)
        )
        queue.submit(jobs_for_sweep([make(repetitions=1)])[0])
        with pytest.raises(OSError, match="chaos"):
            run_worker(queue, policy=ExecutionPolicy(heartbeat_interval=0.05))


class TestHeartbeats:
    def test_stale_after_below_job_duration_steals_only_dead_claims(
        self, tmp_path
    ):
        """The acceptance pin for heartbeats: with stamps flowing,
        ``stale_after`` far below the job duration reclaims the dead
        worker's claim and never touches the live one."""
        queue = JobQueue(tmp_path)
        jobs = [
            jobs_for_sweep([make(seed=s)])[0] for s in (21, 22)
        ]
        for job in jobs:
            queue.submit(job)

        live = queue.claim()  # held by this (live) process
        assert live is not None
        with ClaimHeartbeat(queue, live, interval=0.05):
            dead = queue.claim(owner=worker_identity(DEAD_PID))
            assert dead is not None
            dead_path = tmp_path / "claimed" / f"{dead.job.job_id}.json"
            long_ago = time.time() - 60.0
            os.utime(dead_path, (long_ago, long_ago))  # heartbeats stopped

            time.sleep(0.4)  # several heartbeat periods of "job runtime"
            # stale_after (0.2s) is far below the simulated job length
            # (the live claim has been held ~0.4s and counting).
            assert queue.requeue_stale(0.2) == [dead.job.job_id]
            assert queue.claimed_ids() == [live.job.job_id]

        # Stamps stopped with the heartbeat: now the live claim ages out.
        time.sleep(0.3)
        assert queue.requeue_stale(0.2) == [live.job.job_id]

    def test_worker_stamps_claim_between_repetitions(self, tmp_path):
        """The execute_job hook is the primary heartbeat: even with the
        fallback timer effectively disabled, every repetition boundary
        stamps the claim."""
        stamps = []

        class Recording(JobQueue):
            def heartbeat(self, claim):
                stamps.append(time.time())
                return super().heartbeat(claim)

        queue = Recording(tmp_path)
        queue.submit(jobs_for_sweep([make(repetitions=3)], reps_per_job=3)[0])
        assert run_worker(queue, policy=ExecutionPolicy(heartbeat_interval=3600.0)) == 1
        assert len(stamps) >= 3  # one per repetition (fallback timer idle)

    def test_claim_heartbeat_detects_lost_claim(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(jobs_for_sweep([make()])[0])
        claim = queue.claim()
        beat = ClaimHeartbeat(queue, claim, interval=30.0)
        assert beat.beat() is True
        (tmp_path / "claimed" / f"{claim.job.job_id}.json").unlink()
        assert beat.beat() is False
        assert beat.lost is True

    def test_heartbeat_interval_validation(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(jobs_for_sweep([make()])[0])
        claim = queue.claim()
        with pytest.raises(ValueError):
            ClaimHeartbeat(queue, claim, interval=0.0)


class TestJobTimeout:
    def test_timeout_releases_with_timeout_error_then_dead_letters(
        self, tmp_path
    ):
        queue = JobQueue(tmp_path, max_retries=1)
        job = jobs_for_sweep([make(repetitions=2)], reps_per_job=2)[0]
        queue.submit(job)
        # Deadline of 0s: the between-repetition check trips before the
        # first repetition, releases with a timeout error, the retry
        # trips again, and the job dead-letters.
        assert run_worker(
            queue,
            policy=ExecutionPolicy(job_timeout=0.0, heartbeat_interval=0.05),
        ) == 0
        assert queue.failed_ids() == [job.job_id]
        failed = queue.load_failed(job.job_id)
        assert failed["error"].startswith("timeout:")
        assert failed["attempts"] == 2  # initial try + one retry

    def test_generous_timeout_does_not_interfere(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(jobs_for_sweep([make(repetitions=2)], reps_per_job=2)[0])
        assert run_worker(
            queue,
            policy=ExecutionPolicy(job_timeout=3600.0, heartbeat_interval=0.05),
        ) == 1
        assert queue.counts()["results"] == 1


class TestFailureClassification:
    def test_permanent_failure_dead_letters_without_burning_retries(
        self, tmp_path
    ):
        """A deterministic failure (scenario validation) must not be
        re-run max_retries times — it dead-letters on first sight."""
        queue = JobQueue(tmp_path, max_retries=5)
        # Valid spec, infeasible at run time: budget < 1 eval per node.
        job = jobs_for_sweep(
            [make(nodes=4, total_evaluations=2, repetitions=1)]
        )[0]
        queue.submit(job)
        assert run_worker(queue, policy=ExecutionPolicy(heartbeat_interval=0.05)) == 0
        assert queue.failed_ids() == [job.job_id]
        failed = queue.load_failed(job.job_id)
        assert "ConfigurationError" in failed["error"]
        assert failed["attempts"] == 1  # exactly one execution


class TestKillAndResume:
    def _submit_sweep(self, spool: Path) -> tuple[list[Scenario], list]:
        # ~0.5s per job (12 bundled repetitions): slow enough to
        # SIGKILL mid-job, fast enough for CI.
        points = [
            make(total_evaluations=2000, repetitions=12, seed=31),
            make(total_evaluations=2000, repetitions=12, seed=32),
        ]
        sequential = [Session(s).run() for s in points]
        queue = JobQueue(spool)
        for job in jobs_for_sweep(points, reps_per_job=12):
            queue.submit(job)
        return points, sequential

    def _spawn_worker(self, spool: Path) -> subprocess.Popen:
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.distributed", "worker",
                "--spool", str(spool), "--poll", "0.05",
                "--heartbeat", "0.05", "--quiet",
            ],
            env=_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def _wait_for_claim(self, queue: JobQueue, timeout: float = 60.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if queue.claimed_ids():
                return
            time.sleep(0.005)
        raise AssertionError("worker never claimed a job")

    def test_sigkill_mid_job_restart_completes_bit_identical(
        self, chaos_spool
    ):
        """The headline acceptance test: SIGKILL a worker mid-drain,
        start a fresh worker, and the collected sweep is bit-identical
        to the sequential run — nothing lost, nothing duplicated."""
        points, sequential = self._submit_sweep(chaos_spool)
        queue = JobQueue(chaos_spool)

        proc = self._spawn_worker(chaos_spool)
        try:
            self._wait_for_claim(queue)
            time.sleep(0.15)  # let it get well into the job
        finally:
            proc.kill()  # SIGKILL: no cleanup, no release
            proc.wait(timeout=30)

        # The replacement worker's idle recovery probes the dead pid,
        # requeues its claim, and finishes the sweep.
        run_worker(
            queue,
            poll_interval=0.01,
            policy=ExecutionPolicy(heartbeat_interval=0.05),
        )

        assert queue.counts()["failed"] == 0
        assert queue.claimed_ids() == []
        results = collect_from_spool(queue, points, reps_per_job=12)
        assert [r.records for r in results] == [
            r.records for r in sequential
        ]

    def test_sigterm_releases_claim_without_consuming_retry(
        self, chaos_spool
    ):
        """Graceful shutdown: the worker exits cleanly, its in-flight
        claim goes back to pending with the attempt counter intact."""
        points = [make(total_evaluations=400, repetitions=50, seed=41)]
        queue = JobQueue(chaos_spool)
        job = jobs_for_sweep(points, reps_per_job=50)[0]
        queue.submit(job)

        proc = self._spawn_worker(chaos_spool)
        try:
            self._wait_for_claim(queue)
            time.sleep(0.1)  # mid-job, between repetitions
            proc.send_signal(signal.SIGTERM)
            returncode = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait(timeout=30)

        assert returncode == 0  # graceful exit, not a crash
        assert queue.claimed_ids() == []  # nothing stranded
        assert queue.failed_ids() == []
        pending = queue.pending_ids()
        if pending:  # SIGTERM landed mid-job (the overwhelmingly likely path)
            payload = json.loads(
                (Path(chaos_spool) / "pending" / f"{job.job_id}.json").read_text()
            )
            assert payload["attempts"] == 0  # no retry consumed
            assert "shutdown" in payload["last_error"]
        else:  # the job finished just before the signal was seen
            assert queue.result_ids() == [job.job_id]
