"""Run the library's docstring examples as tests.

Every ``>>>`` example in the public API must actually work — stale
examples are worse than none.  Modules with expensive examples list
explicit skips.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro
from repro.core.kernels import BackendUnavailable

#: Modules whose doctests are too expensive or environment-dependent.
_SKIP = {
    "repro",  # package quickstart runs a real experiment — tested below
}


def _all_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        out.append(info.name)
    return sorted(out)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    if module_name in _SKIP:
        pytest.skip("expensive example, covered separately")
    try:
        module = importlib.import_module(module_name)
    except BackendUnavailable as exc:
        # Optional-dependency kernel backends (numba) refuse to import
        # where the dependency is missing — that is their contract, not
        # a doctest failure.
        pytest.skip(str(exc))
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failures"


def test_package_quickstart_example():
    """The README/package-docstring quickstart, executed for real."""
    from repro import ExperimentConfig, run_experiment

    config = ExperimentConfig(
        function="sphere", nodes=16, particles_per_node=8,
        total_evaluations=16_000, gossip_cycle=8,
        repetitions=3, seed=42,
    )
    result = run_experiment(config)
    assert result.quality_stats.mean < 1.0
