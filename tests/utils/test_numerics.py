"""Tests for numeric helpers (stats feeding the paper's tables)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.numerics import (
    RunningStats,
    clamp_array,
    geometric_mean,
    is_power_of_two,
    powers_of_two,
    safe_log10,
)


class TestSafeLog10:
    def test_scalar(self):
        assert safe_log10(100.0) == pytest.approx(2.0)

    def test_zero_is_floored(self):
        out = safe_log10(0.0)
        assert math.isfinite(out)
        assert out < -300

    def test_array(self):
        out = safe_log10([1.0, 10.0, 0.0])
        assert out.shape == (3,)
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
        assert math.isfinite(out[2])

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            safe_log10(-1.0)

    def test_custom_floor(self):
        assert safe_log10(0.0, floor=1e-5) == pytest.approx(-5.0)


class TestClampArray:
    def test_basic(self):
        out = clamp_array(np.array([-5.0, 0.5, 5.0]), -1.0, 1.0)
        assert np.array_equal(out, [-1.0, 0.5, 1.0])

    def test_vector_bounds(self):
        vals = np.array([[10.0, -10.0]])
        out = clamp_array(vals, np.array([-1.0, -2.0]), np.array([1.0, 2.0]))
        assert np.array_equal(out, [[1.0, -2.0]])

    def test_inverted_bounds_raise(self):
        with pytest.raises(ValueError):
            clamp_array(np.zeros(3), 1.0, -1.0)

    def test_in_place(self):
        vals = np.array([3.0, -3.0])
        out = clamp_array(vals, -1.0, 1.0, out=vals)
        assert out is vals
        assert np.array_equal(vals, [1.0, -1.0])


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_huge_range_does_not_overflow(self):
        assert geometric_mean([1e-300, 1e300]) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_powers_of_two_range(self):
        assert powers_of_two(0, 4) == [1, 2, 4, 8, 16]

    def test_bad_range_raises(self):
        with pytest.raises(ValueError):
            powers_of_two(3, 2)
        with pytest.raises(ValueError):
            powers_of_two(-1, 2)


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert math.isnan(s.variance)

    def test_single_value(self):
        s = RunningStats()
        s.push(3.0)
        assert s.mean == 3.0
        assert s.minimum == 3.0
        assert s.maximum == 3.0
        assert s.variance == 0.0
        assert math.isnan(s.sample_variance)

    def test_matches_numpy(self, rng):
        values = rng.normal(5.0, 2.0, size=200)
        s = RunningStats()
        s.extend(values)
        assert s.mean == pytest.approx(np.mean(values))
        assert s.variance == pytest.approx(np.var(values))
        assert s.sample_variance == pytest.approx(np.var(values, ddof=1))
        assert s.minimum == np.min(values)
        assert s.maximum == np.max(values)
        assert s.std == pytest.approx(np.std(values))

    def test_nan_rejected(self):
        s = RunningStats()
        with pytest.raises(ValueError):
            s.push(float("nan"))

    def test_merge_matches_pooled(self, rng):
        a_vals = rng.normal(size=50)
        b_vals = rng.normal(loc=3.0, size=70)
        a, b = RunningStats(), RunningStats()
        a.extend(a_vals)
        b.extend(b_vals)
        merged = a.merge(b)
        pooled = np.concatenate([a_vals, b_vals])
        assert merged.count == 120
        assert merged.mean == pytest.approx(np.mean(pooled))
        assert merged.variance == pytest.approx(np.var(pooled))
        assert merged.minimum == np.min(pooled)
        assert merged.maximum == np.max(pooled)

    def test_merge_with_empty(self):
        a = RunningStats()
        a.extend([1.0, 2.0])
        empty = RunningStats()
        assert a.merge(empty).mean == a.mean
        assert empty.merge(a).count == 2

    def test_as_dict_keys(self):
        s = RunningStats()
        s.push(1.0)
        d = s.as_dict()
        assert set(d) == {"avg", "min", "max", "var", "count"}


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60))
def test_property_running_stats_vs_numpy(values):
    """Welford's algorithm matches the direct two-pass computation."""
    s = RunningStats()
    s.extend(values)
    arr = np.asarray(values)
    assert s.mean == pytest.approx(np.mean(arr), rel=1e-9, abs=1e-9)
    assert s.variance == pytest.approx(np.var(arr), rel=1e-6, abs=1e-6)
    assert s.minimum == np.min(arr)
    assert s.maximum == np.max(arr)


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=40),
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=40),
)
def test_property_merge_equals_pooled(xs, ys):
    """merge(a, b) is exactly the stats of the concatenation."""
    a, b, pooled = RunningStats(), RunningStats(), RunningStats()
    a.extend(xs)
    b.extend(ys)
    pooled.extend(xs + ys)
    merged = a.merge(b)
    assert merged.count == pooled.count
    assert merged.mean == pytest.approx(pooled.mean, rel=1e-9, abs=1e-9)
    assert merged.variance == pytest.approx(pooled.variance, rel=1e-6, abs=1e-6)
