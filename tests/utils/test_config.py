"""Tests for configuration validation and sweeping."""

from __future__ import annotations

import dataclasses

import pytest

from repro.utils.config import (
    ChurnConfig,
    CoordinationConfig,
    ExperimentConfig,
    NewscastConfig,
    PSOConfig,
    sweep,
)
from repro.utils.exceptions import ConfigurationError


def make_config(**overrides) -> ExperimentConfig:
    base = dict(
        function="sphere",
        nodes=4,
        particles_per_node=8,
        total_evaluations=1000,
        gossip_cycle=8,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestNewscastConfig:
    def test_defaults(self):
        cfg = NewscastConfig()
        assert cfg.view_size == 20
        assert cfg.exchange_per_cycle == 1

    @pytest.mark.parametrize("view_size", [0, -1])
    def test_bad_view_size(self, view_size):
        with pytest.raises(ConfigurationError):
            NewscastConfig(view_size=view_size)

    def test_bad_exchange_rate(self):
        with pytest.raises(ConfigurationError):
            NewscastConfig(exchange_per_cycle=0)


class TestPSOConfig:
    def test_defaults_are_constricted(self):
        cfg = PSOConfig()
        assert cfg.inertia == pytest.approx(0.7298)
        assert cfg.c1 == pytest.approx(1.49618)

    def test_bad_particles(self):
        with pytest.raises(ConfigurationError):
            PSOConfig(particles=0)

    def test_negative_learning_factor(self):
        with pytest.raises(ConfigurationError):
            PSOConfig(c1=-0.1)

    def test_vmax_none_allowed(self):
        assert PSOConfig(vmax_fraction=None).vmax_fraction is None

    def test_vmax_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            PSOConfig(vmax_fraction=0.0)

    def test_nonpositive_inertia_rejected(self):
        with pytest.raises(ConfigurationError):
            PSOConfig(inertia=0.0)


class TestCoordinationConfig:
    @pytest.mark.parametrize("mode", ["push", "pull", "push-pull"])
    def test_valid_modes(self, mode):
        assert CoordinationConfig(mode=mode).mode == mode

    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            CoordinationConfig(mode="broadcast")

    def test_bad_cycle_length(self):
        with pytest.raises(ConfigurationError):
            CoordinationConfig(cycle_length=0)


class TestChurnConfig:
    def test_disabled_by_default(self):
        assert not ChurnConfig().enabled

    def test_enabled_with_crash_rate(self):
        assert ChurnConfig(crash_rate=0.01).enabled

    def test_enabled_with_join_rate(self):
        assert ChurnConfig(join_rate=0.01).enabled

    def test_crash_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(crash_rate=1.0)
        with pytest.raises(ConfigurationError):
            ChurnConfig(crash_rate=-0.1)

    def test_min_population(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(min_population=0)


class TestExperimentConfig:
    def test_valid(self):
        cfg = make_config()
        assert cfg.evaluations_per_node == 250

    def test_scalar_knobs_propagate_to_bundles(self):
        cfg = make_config(particles_per_node=5, gossip_cycle=3)
        assert cfg.pso.particles == 5
        assert cfg.coordination.cycle_length == 3

    def test_frozen(self):
        cfg = make_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.nodes = 10  # type: ignore[misc]

    def test_with_returns_modified_copy(self):
        cfg = make_config()
        cfg2 = cfg.with_(nodes=16)
        assert cfg2.nodes == 16
        assert cfg.nodes == 4

    @pytest.mark.parametrize(
        "field,value",
        [
            ("function", ""),
            ("nodes", 0),
            ("particles_per_node", 0),
            ("total_evaluations", 0),
            ("gossip_cycle", 0),
            ("repetitions", 0),
            ("seed", -1),
            ("quality_threshold", 0.0),
            ("quality_threshold", -1.0),
        ],
    )
    def test_invalid_fields(self, field, value):
        with pytest.raises(ConfigurationError):
            make_config(**{field: value})

    def test_describe_mentions_all_knobs(self):
        desc = make_config().describe()
        for token in ("sphere", "n=4", "k=8", "e=1000", "r=8"):
            assert token in desc

    def test_evaluations_per_node_floor_division(self):
        cfg = make_config(nodes=3, total_evaluations=1000)
        assert cfg.evaluations_per_node == 333


class TestSweep:
    def test_cartesian_order(self):
        base = make_config()
        got = [
            (c.nodes, c.particles_per_node)
            for c in sweep(base, nodes=[1, 2], particles_per_node=[4, 8])
        ]
        assert got == [(1, 4), (1, 8), (2, 4), (2, 8)]

    def test_unknown_axis_raises(self):
        with pytest.raises(ConfigurationError):
            list(sweep(make_config(), bogus=[1]))

    def test_empty_axis_yields_nothing(self):
        assert list(sweep(make_config(), nodes=[])) == []

    def test_single_axis(self):
        confs = list(sweep(make_config(), gossip_cycle=[2, 4, 6]))
        assert [c.gossip_cycle for c in confs] == [2, 4, 6]
