"""Tests for the hierarchical RNG derivation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import SeedSequenceTree, derive_rng, spawn_rngs


class TestSeedSequenceTree:
    def test_same_path_same_stream(self):
        tree = SeedSequenceTree(42)
        a = tree.rng("node", 3).random(8)
        b = tree.rng("node", 3).random(8)
        assert np.array_equal(a, b)

    def test_different_paths_differ(self):
        tree = SeedSequenceTree(42)
        a = tree.rng("node", 3).random(8)
        b = tree.rng("node", 4).random(8)
        assert not np.array_equal(a, b)

    def test_different_master_seeds_differ(self):
        a = SeedSequenceTree(1).rng("x").random(8)
        b = SeedSequenceTree(2).rng("x").random(8)
        assert not np.array_equal(a, b)

    def test_string_and_int_components_are_distinct(self):
        tree = SeedSequenceTree(7)
        # The int 1 and the string "1" must not collide.
        a = tree.rng(1).random(8)
        b = tree.rng("1").random(8)
        assert not np.array_equal(a, b)

    def test_path_order_matters(self):
        tree = SeedSequenceTree(7)
        a = tree.rng("a", "b").random(8)
        b = tree.rng("b", "a").random(8)
        assert not np.array_equal(a, b)

    def test_bool_component_distinct_from_int(self):
        tree = SeedSequenceTree(7)
        a = tree.rng(True).random(4)
        b = tree.rng(1).random(4)
        assert not np.array_equal(a, b)

    def test_rejects_bad_component_type(self):
        tree = SeedSequenceTree(7)
        with pytest.raises(TypeError):
            tree.rng(3.14)

    def test_rejects_negative_master_seed(self):
        with pytest.raises(ValueError):
            SeedSequenceTree(-1)

    def test_rejects_non_integer_seed(self):
        with pytest.raises(TypeError):
            SeedSequenceTree("42")  # type: ignore[arg-type]

    def test_master_seed_property(self):
        assert SeedSequenceTree(99).master_seed == 99

    def test_numpy_integer_seed_accepted(self):
        tree = SeedSequenceTree(np.int64(5))
        assert tree.master_seed == 5

    def test_subtree_differs_from_root_paths(self):
        tree = SeedSequenceTree(11)
        sub = tree.subtree("rep", 3)
        a = sub.rng("node", 0).random(8)
        b = tree.rng("node", 0).random(8)
        assert not np.array_equal(a, b)

    def test_subtree_is_deterministic(self):
        a = SeedSequenceTree(11).subtree("rep", 3).rng("x").random(8)
        b = SeedSequenceTree(11).subtree("rep", 3).rng("x").random(8)
        assert np.array_equal(a, b)

    def test_distinct_subtrees_differ(self):
        tree = SeedSequenceTree(11)
        a = tree.subtree("rep", 0).rng("x").random(8)
        b = tree.subtree("rep", 1).rng("x").random(8)
        assert not np.array_equal(a, b)


class TestHelpers:
    def test_derive_rng_matches_tree(self):
        a = derive_rng(5, "p", 2).random(4)
        b = SeedSequenceTree(5).rng("p", 2).random(4)
        assert np.array_equal(a, b)

    def test_spawn_rngs_count_and_independence(self):
        rngs = spawn_rngs(5, 4, "nodes")
        assert len(rngs) == 4
        draws = [g.random(4) for g in rngs]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_spawn_rngs_zero(self):
        assert spawn_rngs(5, 0) == []

    def test_spawn_rngs_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(5, -1)


@given(
    seed=st.integers(min_value=0, max_value=2**32),
    path=st.lists(
        st.one_of(st.integers(min_value=0, max_value=10**6), st.text(max_size=12)),
        max_size=4,
    ),
)
def test_property_same_path_reproducible(seed, path):
    """Any (seed, path) pair always yields the identical stream."""
    a = SeedSequenceTree(seed).rng(*path).integers(0, 2**31, size=4)
    b = SeedSequenceTree(seed).rng(*path).integers(0, 2**31, size=4)
    assert np.array_equal(a, b)


@given(seed=st.integers(min_value=0, max_value=2**32))
def test_property_sibling_streams_differ(seed):
    """Adjacent integer paths practically never collide."""
    tree = SeedSequenceTree(seed)
    a = tree.rng("n", 0).integers(0, 2**31, size=8)
    b = tree.rng("n", 1).integers(0, 2**31, size=8)
    assert not np.array_equal(a, b)
