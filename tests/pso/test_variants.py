"""Tests for lbest / FIPS swarm variants and neighborhoods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.functions.suite import Sphere
from repro.pso.variants import (
    FullyInformedSwarm,
    LbestSwarm,
    NEIGHBORHOODS,
    ring_neighborhood,
    von_neumann_neighborhood,
)
from repro.utils.config import PSOConfig


class TestNeighborhoods:
    def test_ring_degree(self):
        adj = ring_neighborhood(10, radius=1)
        assert adj.shape == (10, 10)
        assert np.all(adj.sum(axis=1) == 3)  # self + 2 neighbors
        assert np.all(adj.diagonal())

    def test_ring_radius_two(self):
        adj = ring_neighborhood(10, radius=2)
        assert np.all(adj.sum(axis=1) == 5)

    def test_ring_symmetric(self):
        adj = ring_neighborhood(12, radius=2)
        assert np.array_equal(adj, adj.T)

    def test_ring_validation(self):
        with pytest.raises(ValueError):
            ring_neighborhood(0)
        with pytest.raises(ValueError):
            ring_neighborhood(5, radius=0)

    def test_von_neumann_degree(self):
        adj = von_neumann_neighborhood(16)  # 4x4 torus
        assert np.all(adj.sum(axis=1) == 5)  # self + 4
        assert np.array_equal(adj, adj.T)

    def test_von_neumann_rejects_large_primes(self):
        with pytest.raises(ValueError):
            von_neumann_neighborhood(17)

    def test_registry_names(self):
        for name in ("ring", "ring2", "von_neumann", "complete"):
            assert name in NEIGHBORHOODS

    def test_complete_includes_everyone(self):
        adj = NEIGHBORHOODS["complete"](6)
        assert np.all(adj)


def make_lbest(adjacency="ring", k=12, seed=0) -> LbestSwarm:
    return LbestSwarm(
        Sphere(4), PSOConfig(particles=k), np.random.default_rng(seed), adjacency
    )


class TestLbestSwarm:
    def test_converges_on_sphere(self):
        swarm = make_lbest(k=16, seed=1)
        best = swarm.run(16 * 400)
        assert best < 1e-4

    def test_complete_graph_matches_gbest_semantics(self):
        """With the complete neighborhood every particle sees the true
        global best — sanity check on the masking logic."""
        swarm = make_lbest(adjacency="complete", k=8, seed=2)
        swarm.step_cycle()
        swarm.step_cycle()
        # All lbest indices would equal argmin of pbest; just verify
        # the run improves and invariants hold.
        v0 = swarm.best_value
        swarm.run(8 * 50)
        assert swarm.best_value <= v0

    def test_best_monotone(self):
        swarm = make_lbest(k=10)
        prev = np.inf
        for _ in range(60):
            swarm.step_cycle()
            assert swarm.best_value <= prev + 1e-15
            prev = swarm.best_value

    def test_unknown_neighborhood_name(self):
        with pytest.raises(ValueError):
            make_lbest(adjacency="hexagon")

    def test_wrong_shape_adjacency(self):
        with pytest.raises(ValueError):
            LbestSwarm(
                Sphere(4),
                PSOConfig(particles=4),
                np.random.default_rng(0),
                np.ones((3, 3), dtype=bool),
            )

    def test_missing_self_loop_rejected(self):
        adj = ring_neighborhood(4)
        adj[0, 0] = False
        with pytest.raises(ValueError):
            LbestSwarm(Sphere(4), PSOConfig(particles=4), np.random.default_rng(0), adj)

    def test_custom_adjacency_accepted(self):
        adj = ring_neighborhood(6, radius=1)
        swarm = LbestSwarm(Sphere(3), PSOConfig(particles=6), np.random.default_rng(0), adj)
        swarm.run(60)
        assert np.isfinite(swarm.best_value)


class TestFullyInformedSwarm:
    def test_converges_on_sphere(self):
        swarm = FullyInformedSwarm(
            Sphere(4), PSOConfig(particles=16), np.random.default_rng(1), "ring"
        )
        best = swarm.run(16 * 400)
        assert best < 1e-2

    def test_best_monotone(self):
        swarm = FullyInformedSwarm(
            Sphere(4), PSOConfig(particles=8), np.random.default_rng(0), "ring"
        )
        prev = np.inf
        for _ in range(40):
            swarm.step_cycle()
            assert swarm.best_value <= prev + 1e-15
            prev = swarm.best_value

    def test_determinism(self):
        a = FullyInformedSwarm(
            Sphere(4), PSOConfig(particles=6), np.random.default_rng(5), "ring"
        )
        b = FullyInformedSwarm(
            Sphere(4), PSOConfig(particles=6), np.random.default_rng(5), "ring"
        )
        a.run(60)
        b.run(60)
        assert a.best_value == b.best_value
