"""Tests for velocity clamping policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.functions.suite import Sphere
from repro.pso.velocity import domain_fraction_clamp, no_clamp


class TestNoClamp:
    def test_leaves_velocities_untouched(self):
        clamp = no_clamp()
        v = np.array([[1e9, -1e9]])
        before = v.copy()
        clamp(v)
        assert np.array_equal(v, before)


class TestDomainFractionClamp:
    def test_clamps_to_fraction(self):
        f = Sphere(2)  # width 200 per dim
        clamp = domain_fraction_clamp(f, 0.1)  # vmax = 20
        v = np.array([[100.0, -100.0], [5.0, -5.0]])
        clamp(v)
        assert np.array_equal(v, [[20.0, -20.0], [5.0, -5.0]])

    def test_full_width(self):
        f = Sphere(2)
        clamp = domain_fraction_clamp(f, 1.0)
        v = np.array([[500.0, -500.0]])
        clamp(v)
        assert np.array_equal(v, [[200.0, -200.0]])

    def test_in_place(self):
        f = Sphere(2)
        clamp = domain_fraction_clamp(f, 0.5)
        v = np.full((3, 2), 1e6)
        clamp(v)
        assert np.all(v == 100.0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            domain_fraction_clamp(Sphere(2), 0.0)
        with pytest.raises(ValueError):
            domain_fraction_clamp(Sphere(2), -1.0)
