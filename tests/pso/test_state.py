"""Capacity-backed SoA state: growth, slot recycling, view semantics."""

from __future__ import annotations

import numpy as np

from repro.functions.base import get_function
from repro.pso.state import stack_states
from repro.pso.swarm import initial_swarm_state
from repro.utils.config import PSOConfig


def make_state(seed):
    return initial_swarm_state(
        get_function("sphere"), PSOConfig(particles=3), np.random.default_rng(seed)
    )


def make_soa(n=4):
    return stack_states([make_state(i) for i in range(n)])


class TestCapacity:
    def test_stacked_state_starts_exact(self):
        soa = make_soa(4)
        assert soa.n == 4 and soa.capacity == 4
        assert soa.positions.shape == (4, 3, get_function("sphere").dimension)

    def test_append_grows_geometrically(self):
        soa = make_soa(4)
        capacities = set()
        for i in range(60):
            soa.append_state(make_state(100 + i))
            capacities.add(soa.capacity)
        assert soa.n == 64
        # Geometric doubling: O(log n) distinct capacities, not O(n).
        assert len(capacities) <= 5
        assert soa.capacity >= soa.n

    def test_views_track_occupied_slots_only(self):
        soa = make_soa(2)
        soa.append_state(make_state(5))  # forces headroom
        assert soa.capacity > soa.n or soa.capacity == soa.n
        soa.reserve(16)
        assert soa.positions.shape[0] == soa.n == 3
        assert soa.best_values.shape == (3,)

    def test_append_preserves_existing_rows(self):
        soa = make_soa(2)
        before = soa.node_state(0)
        for i in range(10):
            soa.append_state(make_state(50 + i))
        after = soa.node_state(0)
        assert np.array_equal(before.positions, after.positions)
        assert before.best_value == after.best_value

    def test_replace_slot_overwrites_in_place(self):
        soa = make_soa(3)
        fresh = make_state(99)
        soa.replace_slot(1, fresh)
        got = soa.node_state(1)
        assert np.array_equal(got.positions, fresh.positions)
        assert got.evaluations == fresh.evaluations
        assert soa.n == 3

    def test_replace_slot_bounds_checked(self):
        soa = make_soa(2)
        try:
            soa.replace_slot(5, make_state(1))
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_setter_writes_through_with_headroom(self):
        soa = make_soa(2)
        soa.reserve(8)
        new_best = soa.best_values + 1.0
        soa.best_values = new_best
        assert np.array_equal(soa.best_values, new_best)
        assert soa.capacity == 8

    def test_extend_matches_append_sequence(self):
        a = make_soa(2)
        b = make_soa(2)
        states = [make_state(70 + i) for i in range(5)]
        a.extend(states)
        for st in states:
            b.append_state(st)
        assert a.n == b.n
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.evaluations, b.evaluations)
