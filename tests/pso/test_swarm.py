"""Tests for the core PSO swarm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.functions.counting import CountingFunction
from repro.functions.suite import Sphere
from repro.pso.swarm import Swarm
from repro.utils.config import PSOConfig


def make_swarm(k=8, dim=4, seed=0, **pso_kwargs) -> Swarm:
    return Swarm(
        Sphere(dim),
        PSOConfig(particles=k, **pso_kwargs),
        np.random.default_rng(seed),
    )


class TestInitialization:
    def test_positions_inside_domain(self):
        swarm = make_swarm(k=20)
        f = swarm.function
        assert np.all(f.contains(swarm.state.positions))

    def test_no_evaluations_at_construction(self):
        swarm = make_swarm()
        assert swarm.state.evaluations == 0
        assert swarm.best_value == np.inf
        assert np.all(~np.isfinite(swarm.state.pbest_values))

    def test_velocities_within_vmax(self):
        swarm = make_swarm(k=50, vmax_fraction=0.5)
        width = swarm.function.domain_width
        assert np.all(np.abs(swarm.state.velocities) <= 0.5 * width + 1e-12)

    def test_state_shapes(self):
        swarm = make_swarm(k=7, dim=3)
        st = swarm.state
        assert st.positions.shape == (7, 3)
        assert st.velocities.shape == (7, 3)
        assert st.size == 7
        assert st.dimension == 3


class TestPerParticleStepping:
    def test_one_step_one_evaluation(self):
        f = CountingFunction(Sphere(4))
        swarm = Swarm(f, PSOConfig(particles=3), np.random.default_rng(0))
        swarm.step_particle()
        assert f.evaluations == 1
        assert swarm.state.evaluations == 1

    def test_cursor_round_robin(self):
        swarm = make_swarm(k=3)
        for expected in [1, 2, 0, 1, 2, 0]:
            swarm.step_particle()
            assert swarm.state.cursor == expected

    def test_first_visit_evaluates_without_moving(self):
        swarm = make_swarm(k=2)
        pos_before = swarm.state.positions[0].copy()
        swarm.step_particle()
        assert np.array_equal(swarm.state.positions[0], pos_before)
        assert np.isfinite(swarm.state.pbest_values[0])

    def test_second_visit_moves(self):
        swarm = make_swarm(k=1)
        swarm.step_particle()
        pos_before = swarm.state.positions[0].copy()
        swarm.step_particle()
        assert not np.array_equal(swarm.state.positions[0], pos_before)

    def test_step_evaluations_counts(self):
        swarm = make_swarm(k=4)
        assert swarm.step_evaluations(10) == 10
        assert swarm.state.evaluations == 10

    def test_step_evaluations_stops_at_budget(self):
        """A tripped budget ends the loop early with a clean count —
        no exception, no moved-but-unevaluated particle."""
        f = CountingFunction(Sphere(4), budget=6)
        swarm = Swarm(f, PSOConfig(particles=4), np.random.default_rng(0))
        assert swarm.step_evaluations(10) == 6
        assert f.evaluations == 6
        assert swarm.state.evaluations == 6
        assert swarm.step_evaluations(3) == 0  # budget long gone

    def test_step_evaluations_negative_raises(self):
        with pytest.raises(ValueError):
            make_swarm().step_evaluations(-1)


class TestBestTracking:
    def test_best_monotone_nonincreasing(self):
        swarm = make_swarm(k=6)
        bests = []
        for _ in range(300):
            swarm.step_particle()
            bests.append(swarm.best_value)
        assert all(b2 <= b1 + 1e-15 for b1, b2 in zip(bests, bests[1:]))

    def test_best_is_min_of_pbests_without_injection(self):
        swarm = make_swarm(k=6)
        swarm.step_evaluations(120)
        assert swarm.best_value == pytest.approx(
            float(np.min(swarm.state.pbest_values))
        )

    def test_pbest_never_worse_than_any_visited(self):
        swarm = make_swarm(k=2)
        visited = []
        for _ in range(50):
            visited.append(swarm.step_particle())
        assert swarm.best_value <= min(visited) + 1e-15

    def test_state_invariants_hold_during_run(self):
        swarm = make_swarm(k=5)
        for _ in range(100):
            swarm.step_particle()
            swarm.state.validate()


class TestInjection:
    def test_inject_better_adopted(self):
        swarm = make_swarm(k=2)
        swarm.step_evaluations(4)
        target = np.zeros(4)
        assert swarm.inject_best(target, 1e-30)
        assert swarm.best_value == 1e-30
        assert np.array_equal(swarm.best_position, target)

    def test_inject_worse_rejected(self):
        swarm = make_swarm(k=2)
        swarm.step_evaluations(4)
        before = swarm.best_value
        assert not swarm.inject_best(np.ones(4), before + 1.0)
        assert swarm.best_value == before

    def test_inject_equal_rejected(self):
        """Strictly-better rule: ties do not churn the optimum."""
        swarm = make_swarm(k=2)
        swarm.step_evaluations(4)
        before = swarm.best_value
        pos = swarm.best_position
        assert not swarm.inject_best(pos + 1.0, before)

    def test_inject_does_not_touch_pbests(self):
        swarm = make_swarm(k=3)
        swarm.step_evaluations(6)
        pbv = swarm.state.pbest_values.copy()
        swarm.inject_best(np.zeros(4), 1e-30)
        assert np.array_equal(swarm.state.pbest_values, pbv)

    def test_inject_wrong_shape_raises(self):
        swarm = make_swarm(k=2)
        with pytest.raises(ValueError):
            swarm.inject_best(np.zeros(3), 0.0)

    def test_injected_best_steers_search(self):
        """After injecting a strong optimum, the swarm concentrates
        around it — the social attractor redirect the paper relies on."""
        swarm = make_swarm(k=8, seed=3)
        swarm.step_evaluations(8)
        swarm.inject_best(np.zeros(4), 1e-30)
        for _ in range(40):
            swarm.step_evaluations(8)
        mean_dist = float(np.linalg.norm(swarm.state.positions, axis=1).mean())
        assert mean_dist < 40.0  # domain half-width is 100


class TestSynchronousCycle:
    def test_cycle_costs_k_evaluations(self):
        f = CountingFunction(Sphere(4))
        swarm = Swarm(f, PSOConfig(particles=5), np.random.default_rng(0))
        assert swarm.step_cycle() == 5
        assert f.evaluations == 5

    def test_first_cycle_establishes_pbests(self):
        swarm = make_swarm(k=4)
        swarm.step_cycle()
        assert np.all(np.isfinite(swarm.state.pbest_values))

    def test_sync_converges_on_sphere(self):
        swarm = make_swarm(k=16, seed=1)
        best = swarm.run(16 * 300, synchronous=True)
        assert best < 1e-6

    def test_async_converges_on_sphere(self):
        swarm = make_swarm(k=16, seed=1)
        best = swarm.run(16 * 300, synchronous=False)
        assert best < 1e-6

    def test_run_rounds_down_to_whole_cycles(self):
        f = CountingFunction(Sphere(4))
        swarm = Swarm(f, PSOConfig(particles=8), np.random.default_rng(0))
        swarm.run(20, synchronous=True)  # 2 cycles of 8
        assert f.evaluations == 16

    def test_run_negative_raises(self):
        with pytest.raises(ValueError):
            make_swarm().run(-1)


class TestVelocityClamping:
    def test_velocities_bounded_forever(self):
        swarm = make_swarm(k=6, vmax_fraction=0.25)
        width = swarm.function.domain_width
        for _ in range(200):
            swarm.step_particle()
            assert np.all(np.abs(swarm.state.velocities) <= 0.25 * width + 1e-9)

    def test_unclamped_allowed(self):
        swarm = make_swarm(k=4, vmax_fraction=None)
        swarm.step_evaluations(40)  # must simply not error
        assert swarm.state.evaluations == 40


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        a = make_swarm(k=5, seed=9)
        b = make_swarm(k=5, seed=9)
        a.step_evaluations(50)
        b.step_evaluations(50)
        assert np.array_equal(a.state.positions, b.state.positions)
        assert a.best_value == b.best_value

    def test_different_seed_differs(self):
        a = make_swarm(k=5, seed=1)
        b = make_swarm(k=5, seed=2)
        assert not np.array_equal(a.state.positions, b.state.positions)
