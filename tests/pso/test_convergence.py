"""Convergence behaviour of the PSO solver across the paper suite.

These are statistical regression tests pinned by fixed seeds: they
assert the solver achieves sensible quality on each function class
(easy / nice / hard per the paper's classification) within a modest
budget, and that known pathologies behave as expected (the literal
textbook parameters do not converge).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.functions import get_function
from repro.pso.swarm import Swarm
from repro.utils.config import PSOConfig


def best_of_runs(fname: str, evaluations: int, runs: int = 3, **pso_kwargs) -> float:
    f = get_function(fname)
    results = []
    for seed in range(runs):
        swarm = Swarm(f, PSOConfig(particles=16, **pso_kwargs),
                      np.random.default_rng(seed))
        results.append(swarm.run(evaluations, synchronous=True))
    return min(results)


class TestSuiteConvergence:
    def test_f2_easy(self):
        assert best_of_runs("f2", 16 * 200) < 1e-6

    def test_sphere_deep_convergence(self):
        assert best_of_runs("sphere", 16 * 500) < 1e-15

    def test_zakharov_nice(self):
        assert best_of_runs("zakharov", 16 * 500) < 1e-6

    def test_rosenbrock_moderate(self):
        # The banana valley: last digits are hard; 1e2 is a good swarm.
        assert best_of_runs("rosenbrock", 16 * 500) < 100.0

    def test_schaffer_reaches_inner_rings(self):
        # In 10-D a single 16-particle swarm typically lands a few
        # rings out (the paper's 0.00972 first-ring value needs the
        # collective network budget); a handful of rings in is still
        # far below random sampling (~0.5).
        assert best_of_runs("schaffer", 16 * 500) < 0.05

    def test_griewank_partial(self):
        # Hard: stuck in local minima but far below random (~90).
        assert best_of_runs("griewank", 16 * 500) < 0.5


class TestParameterPathologies:
    def test_textbook_parameters_do_not_converge(self):
        """w=1, c=2 (the paper's literal equations) stagnates orders of
        magnitude above the constricted defaults — the documented
        reason we default to constriction."""
        literal = best_of_runs("sphere", 16 * 300, inertia=1.0, c1=2.0, c2=2.0)
        constricted = best_of_runs("sphere", 16 * 300)
        assert literal > 1e3 * max(constricted, 1e-300)

    def test_tiny_swarm_is_weak(self):
        """k=1 degenerates (no independent social signal): the paper's
        Figure 1 shows particles=1 far above the rest."""
        k1 = Swarm(get_function("sphere"), PSOConfig(particles=1),
                   np.random.default_rng(0)).run(1000)
        k16 = Swarm(get_function("sphere"), PSOConfig(particles=16),
                    np.random.default_rng(0)).run(1000, synchronous=True)
        assert k16 < k1

    def test_more_evaluations_never_hurt_much(self):
        short = best_of_runs("sphere", 16 * 50)
        long = best_of_runs("sphere", 16 * 400)
        assert long <= short * 1.01


class TestConvergenceTrajectory:
    def test_sphere_log_linear_decay(self):
        """Constricted PSO converges roughly exponentially on Sphere:
        log-quality drops by a healthy factor between budget
        checkpoints."""
        f = get_function("sphere")
        swarm = Swarm(f, PSOConfig(particles=16), np.random.default_rng(7))
        checkpoints = []
        for _ in range(4):
            swarm.run(16 * 100, synchronous=True)
            checkpoints.append(swarm.best_value)
        # Each extra 100 sweeps buys at least 2 orders of magnitude.
        for a, b in zip(checkpoints, checkpoints[1:]):
            assert b < a * 1e-2 or b < 1e-200
