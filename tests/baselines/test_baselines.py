"""Tests for the baseline optimizers and their comparisons."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.centralized import run_centralized
from repro.baselines.independent import run_independent
from repro.baselines.masterslave import (
    MASTER_NODE_ID,
    run_master_slave,
    star_topology_factory,
)
from repro.core.runner import run_experiment, run_single
from repro.utils.config import ExperimentConfig


def make_config(**overrides) -> ExperimentConfig:
    base = dict(
        function="sphere",
        nodes=8,
        particles_per_node=8,
        total_evaluations=16_000,
        gossip_cycle=8,
        repetitions=2,
        seed=21,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestCentralized:
    def test_converges(self):
        result = run_centralized(make_config())
        assert all(q < 1e-3 for q in result.qualities)
        assert result.stats.count == 2

    def test_defaults_to_total_particles(self):
        # n*k = 64 particles; explicit same size must match exactly.
        a = run_centralized(make_config())
        b = run_centralized(make_config(), swarm_size=64)
        assert a.qualities == b.qualities

    def test_custom_swarm_size(self):
        result = run_centralized(make_config(), swarm_size=16)
        assert all(np.isfinite(q) for q in result.qualities)

    def test_invalid_swarm_size(self):
        with pytest.raises(ValueError):
            run_centralized(make_config(), swarm_size=0)

    def test_deterministic(self):
        a = run_centralized(make_config())
        b = run_centralized(make_config())
        assert a.qualities == b.qualities


class TestIndependent:
    def test_best_of_n_at_most_each_node(self):
        result = run_independent(make_config())
        for rep, best in enumerate(result.qualities):
            assert best == min(result.per_node_qualities[rep])

    def test_shapes(self):
        cfg = make_config(nodes=5, repetitions=3)
        result = run_independent(cfg)
        assert len(result.qualities) == 3
        assert all(len(pq) == 5 for pq in result.per_node_qualities)

    def test_infeasible_budget_raises(self):
        with pytest.raises(ValueError):
            run_independent(make_config(nodes=8, total_evaluations=4))

    def test_coordination_beats_independence(self):
        """Ablation A3's headline: the coordinated framework matches or
        beats independent multi-start at equal total budget (the
        shared attractor concentrates the search)."""
        cfg = make_config(
            nodes=8, particles_per_node=8, total_evaluations=32_000,
            gossip_cycle=8, repetitions=3,
        )
        coordinated = run_experiment(cfg)
        independent = run_independent(cfg)
        # Compare medians of log-quality to be robust to outliers.
        coord_q = np.log10(np.maximum(coordinated.qualities(), 1e-300))
        indep_q = np.log10(np.maximum(independent.qualities, 1e-300))
        assert np.median(coord_q) <= np.median(indep_q) + 0.5


class TestMasterSlave:
    def test_star_factory_shapes(self):
        factory = star_topology_factory(5)
        name, proto = factory(0)
        assert name == "topology"
        assert sorted(proto.neighbors) == [1, 2, 3, 4]
        _, slave = factory(3)
        assert slave.neighbors == [MASTER_NODE_ID]

    def test_runs_and_converges(self):
        result = run_master_slave(make_config())
        assert result.quality_stats.mean < 10.0

    def test_comparable_to_newscast_on_static_network(self):
        """Without churn a star diffuses optima fine — quality within
        a couple of orders of the decentralized run (claim: topology
        choice is about robustness, not raw quality)."""
        cfg = make_config(repetitions=3)
        star = run_master_slave(cfg)
        newscast = run_experiment(cfg)
        star_q = np.median(np.log10(np.maximum(star.qualities(), 1e-300)))
        nc_q = np.median(np.log10(np.maximum(newscast.qualities(), 1e-300)))
        assert abs(star_q - nc_q) < 6.0

    def test_master_crash_stalls_coordination(self):
        """The single point of failure, demonstrated: crash the master
        and slaves stop hearing about remote optima entirely (their
        only contact is gone), while a NEWSCAST network keeps
        diffusing after losing any one node."""
        from repro.core.dpso import PSOStepProtocol
        from repro.simulator.engine import CycleDrivenEngine
        from repro.simulator.network import Network
        from repro.core.node import OptimizationNodeSpec, build_optimization_node
        from repro.functions.base import get_function
        from repro.utils.rng import SeedSequenceTree

        cfg = make_config(nodes=6, total_evaluations=60_000)
        tree = SeedSequenceTree(5)
        spec = OptimizationNodeSpec(
            function=get_function(cfg.function),
            pso=cfg.pso,
            newscast=cfg.newscast,
            coordination=cfg.coordination,
            rng_tree=tree,
            evals_per_cycle=cfg.gossip_cycle,
            budget_per_node=cfg.evaluations_per_node,
            topology_factory=star_topology_factory(cfg.nodes),
        )
        net = Network(rng=tree.rng("network"))
        net.populate(cfg.nodes, factory=lambda n: build_optimization_node(n, spec))
        engine = CycleDrivenEngine(net, rng=tree.rng("engine"))
        engine.run(5)
        net.crash(MASTER_NODE_ID)
        engine.run(5)
        adoptions_before = {
            i: net.node(i).protocol("coordination").adoptions for i in range(1, 6)
        }
        engine.run(20)
        adoptions_after = {
            i: net.node(i).protocol("coordination").adoptions for i in range(1, 6)
        }
        # No slave can adopt anything new: the only route is dead.
        assert adoptions_after == adoptions_before
