"""Tests for SweepData and a tiny end-to-end experiment run."""

from __future__ import annotations

import math

import pytest

from repro.core.metrics import MessageTally
from repro.experiments import exp3_cycle_length
from repro.experiments.common import SweepData, run_sweep
from repro.scenario import ExecutionPolicy, Result, RunRecord, Scenario
from repro.utils.config import ExperimentConfig


def tiny_configs():
    base = ExperimentConfig(
        function="sphere", nodes=4, particles_per_node=4,
        total_evaluations=400, gossip_cycle=4, repetitions=2, seed=11,
    )
    return [
        base,
        base.with_(gossip_cycle=2),
        base.with_(function="f2"),
    ]


def _fake_result(qualities: list[float]) -> Result:
    """A Result with hand-set per-repetition qualities."""
    scenario = Scenario(
        function="sphere", nodes=4, particles_per_node=4,
        total_evaluations=400, gossip_cycle=4,
        repetitions=len(qualities), seed=0,
    )
    records = [
        RunRecord(
            best_value=q, quality=q, total_evaluations=100, cycles=1,
            stop_reason="budget", threshold_local_time=None,
            threshold_total_evaluations=None, messages=MessageTally(),
            node_best_spread=0.0,
        )
        for q in qualities
    ]
    return Result(scenario=scenario, records=records)


@pytest.fixture(scope="module")
def sweep_data() -> SweepData:
    return run_sweep("tiny", "test", tiny_configs())


class TestSweepData:
    def test_entries_in_order(self, sweep_data):
        assert len(sweep_data.entries) == 3
        assert sweep_data.entries[0][0].gossip_cycle == 4
        assert sweep_data.entries[1][0].gossip_cycle == 2

    def test_functions_first_seen_order(self, sweep_data):
        assert sweep_data.functions() == ["sphere", "f2"]

    def test_for_function_filters(self, sweep_data):
        assert len(sweep_data.for_function("sphere")) == 2
        assert len(sweep_data.for_function("f2")) == 1

    def test_best_per_function_picks_lowest_mean(self, sweep_data):
        best = sweep_data.best_per_function()
        sphere_means = [
            res.quality_stats.mean for _, res in sweep_data.for_function("sphere")
        ]
        assert best["sphere"].quality_stats.mean == min(sphere_means)

    def test_best_per_function_ignores_nan_mean_seen_first(self):
        """Regression: a NaN mean quality used to be unbeatable.

        ``NaN < x`` and ``x < NaN`` are both False, so once a
        NaN-mean entry was stored first, every later candidate lost
        the ``mean < cur.mean`` comparison and the paper-style "best
        results" table printed the NaN row instead of the true best.
        """
        cfg = tiny_configs()[0]
        inf = float("inf")
        entries = [
            (cfg, _fake_result([inf, inf])),        # NaN mean, seen first
            (cfg.with_(gossip_cycle=2), _fake_result([1.0, 3.0])),
            (cfg.with_(gossip_cycle=1), _fake_result([4.0, 6.0])),
        ]
        assert math.isnan(entries[0][1].quality_stats.mean)  # the trap
        data = SweepData(name="t", scale="s", entries=entries)
        best = data.best_per_function()
        assert best["sphere"].quality_stats.mean == 2.0

    def test_best_per_function_nan_only_entries_still_report(self):
        """With nothing finite to prefer, the row still appears."""
        cfg = tiny_configs()[0]
        inf = float("inf")
        data = SweepData(
            name="t", scale="s", entries=[(cfg, _fake_result([inf, inf]))]
        )
        assert math.isnan(data.best_per_function()["sphere"].quality_stats.mean)

    def test_series_grouping(self, sweep_data):
        series = sweep_data.series(
            "sphere",
            x_of=lambda c: c.gossip_cycle,
            group_of=lambda c: c.nodes,
        )
        assert set(series) == {4}
        xs, ys = series[4]
        assert xs == [4.0, 2.0]
        assert len(ys) == 2

    def test_elapsed_recorded(self, sweep_data):
        assert sweep_data.elapsed_seconds > 0

    def test_progress_callback(self):
        messages = []
        run_sweep("t", "s", tiny_configs()[:1], progress=messages.append)
        assert len(messages) == 1
        assert "t:s" in messages[0]


class TestDistributedSweep:
    def test_workers_match_sequential_entries(self, sweep_data):
        """Cross-point scheduling returns the sequential sweep verbatim."""
        parallel = run_sweep(
            "tiny", "test", tiny_configs(),
            policy=ExecutionPolicy(workers=2),
        )
        assert [cfg for cfg, _ in parallel.entries] == [
            cfg for cfg, _ in sweep_data.entries
        ]
        assert [res.records for _, res in parallel.entries] == [
            res.records for _, res in sweep_data.entries
        ]

    def test_spool_matches_sequential_entries(self, sweep_data, tmp_path):
        spooled = run_sweep(
            "tiny", "test", tiny_configs(),
            policy=ExecutionPolicy(workers=2, spool=str(tmp_path)),
        )
        assert [res.records for _, res in spooled.entries] == [
            res.records for _, res in sweep_data.entries
        ]

    def test_workers_progress_counts_completions(self):
        messages = []
        run_sweep(
            "t", "s", tiny_configs(), progress=messages.append,
            policy=ExecutionPolicy(workers=2),
        )
        assert len(messages) == 3
        assert any("3/3" in m for m in messages)


class TestEndToEndSmoke:
    def test_exp3_smoke_runs_and_reports(self):
        """One full experiment module at its smallest extent: run it
        and render the report — validates the whole chain."""
        data = exp3_cycle_length.run(scale="smoke", seed=5)
        report = exp3_cycle_length.report(data)
        assert "Table 3" in report
        assert "Figure 3" in report
        assert "sphere" in report
        assert "griewank" in report
