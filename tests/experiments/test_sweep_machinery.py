"""Tests for SweepData and a tiny end-to-end experiment run."""

from __future__ import annotations

import pytest

from repro.experiments import exp3_cycle_length
from repro.experiments.common import SweepData, run_sweep
from repro.utils.config import ExperimentConfig


def tiny_configs():
    base = ExperimentConfig(
        function="sphere", nodes=4, particles_per_node=4,
        total_evaluations=400, gossip_cycle=4, repetitions=2, seed=11,
    )
    return [
        base,
        base.with_(gossip_cycle=2),
        base.with_(function="f2"),
    ]


@pytest.fixture(scope="module")
def sweep_data() -> SweepData:
    return run_sweep("tiny", "test", tiny_configs())


class TestSweepData:
    def test_entries_in_order(self, sweep_data):
        assert len(sweep_data.entries) == 3
        assert sweep_data.entries[0][0].gossip_cycle == 4
        assert sweep_data.entries[1][0].gossip_cycle == 2

    def test_functions_first_seen_order(self, sweep_data):
        assert sweep_data.functions() == ["sphere", "f2"]

    def test_for_function_filters(self, sweep_data):
        assert len(sweep_data.for_function("sphere")) == 2
        assert len(sweep_data.for_function("f2")) == 1

    def test_best_per_function_picks_lowest_mean(self, sweep_data):
        best = sweep_data.best_per_function()
        sphere_means = [
            res.quality_stats.mean for _, res in sweep_data.for_function("sphere")
        ]
        assert best["sphere"].quality_stats.mean == min(sphere_means)

    def test_series_grouping(self, sweep_data):
        series = sweep_data.series(
            "sphere",
            x_of=lambda c: c.gossip_cycle,
            group_of=lambda c: c.nodes,
        )
        assert set(series) == {4}
        xs, ys = series[4]
        assert xs == [4.0, 2.0]
        assert len(ys) == 2

    def test_elapsed_recorded(self, sweep_data):
        assert sweep_data.elapsed_seconds > 0

    def test_progress_callback(self):
        messages = []
        run_sweep("t", "s", tiny_configs()[:1], progress=messages.append)
        assert len(messages) == 1
        assert "t:s" in messages[0]


class TestEndToEndSmoke:
    def test_exp3_smoke_runs_and_reports(self):
        """One full experiment module at its smallest extent: run it
        and render the report — validates the whole chain."""
        data = exp3_cycle_length.run(scale="smoke", seed=5)
        report = exp3_cycle_length.report(data)
        assert "Table 3" in report
        assert "Figure 3" in report
        assert "sphere" in report
        assert "griewank" in report
