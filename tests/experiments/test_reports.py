"""Report-rendering tests for every experiment module.

Tiny hand-built sweeps (not the module SCALES) keep these fast while
exercising the full table + ASCII-figure rendering path of each
report function.
"""

from __future__ import annotations

import pytest

from repro.core.runner import run_experiment
from repro.experiments import (
    exp1_swarm_size,
    exp2_network_size,
    exp3_cycle_length,
    exp4_time_to_quality,
)
from repro.experiments.common import SweepData
from repro.utils.config import ExperimentConfig


def tiny_sweep(name, configs) -> SweepData:
    data = SweepData(name=name, scale="tiny")
    for cfg in configs:
        data.entries.append((cfg, run_experiment(cfg)))
    data.elapsed_seconds = 0.1
    return data


@pytest.fixture(scope="module")
def quality_sweep() -> SweepData:
    configs = [
        ExperimentConfig(
            function=f, nodes=n, particles_per_node=k,
            total_evaluations=200 * n, gossip_cycle=k,
            repetitions=2, seed=5,
        )
        for f in ("sphere", "griewank")
        for n in (1, 4)
        for k in (4, 8)
    ]
    return tiny_sweep("exp1", configs)


@pytest.fixture(scope="module")
def threshold_sweep() -> SweepData:
    configs = [
        ExperimentConfig(
            function=f, nodes=n, particles_per_node=4,
            total_evaluations=2**13, gossip_cycle=4,
            repetitions=2, seed=5, quality_threshold=1e-6,
        )
        for f in ("sphere", "griewank")
        for n in (1, 4)
    ]
    return tiny_sweep("exp4", configs)


class TestQualityReports:
    def test_exp1_report_structure(self, quality_sweep):
        text = exp1_swarm_size.report(quality_sweep)
        assert "Table 1" in text
        assert "Figure 1 (sphere)" in text
        assert "Figure 1 (griewank)" in text
        assert "size=1" in text and "size=4" in text

    def test_exp2_report_structure(self, quality_sweep):
        text = exp2_network_size.report(quality_sweep)
        assert "Table 2" in text
        assert "Min" in text
        assert "particles=4" in text

    def test_exp3_report_structure(self, quality_sweep):
        text = exp3_cycle_length.report(quality_sweep)
        assert "Table 3" in text
        assert "Figure 3 (sphere)" in text


class TestTimeReport:
    def test_exp4_report_has_dash_for_griewank(self, threshold_sweep):
        text = exp4_time_to_quality.report(threshold_sweep)
        assert "Table 4" in text
        lines = [l for l in text.splitlines() if l.startswith("griewank")]
        assert lines and "–" in lines[0]

    def test_exp4_report_has_numbers_for_sphere(self, threshold_sweep):
        text = exp4_time_to_quality.report(threshold_sweep)
        lines = [l for l in text.splitlines() if l.startswith("sphere")]
        assert lines and "–" not in lines[0]

    def test_exp4_figure_omits_unconverged(self, threshold_sweep):
        text = exp4_time_to_quality.report(threshold_sweep)
        # Griewank's panel exists but shows "no data" markers.
        assert "Figure 4 (griewank)" in text
        griewank_section = text.split("Figure 4 (griewank)")[1]
        assert "(no data)" in griewank_section or "no finite data" in griewank_section
