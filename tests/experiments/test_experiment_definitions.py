"""Tests for the experiment sweep definitions (fast: configs only)."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments import (
    exp1_swarm_size,
    exp2_network_size,
    exp3_cycle_length,
    exp4_time_to_quality,
)
from repro.functions.suite import PAPER_FUNCTIONS
from repro.utils.exceptions import ConfigurationError


class TestRegistry:
    def test_experiments_registered(self):
        assert sorted(EXPERIMENTS) == [
            "exp1", "exp2", "exp3", "exp4", "exp5", "exp6",
        ]

    @pytest.mark.parametrize(
        "name", sorted(["exp1", "exp2", "exp3", "exp4", "exp5", "exp6"])
    )
    def test_module_interface(self, name):
        module = EXPERIMENTS[name]
        for attr in ("configs", "run", "report", "SCALES", "NAME", "TITLE"):
            assert hasattr(module, attr)
        # exp6 additionally defines a "tiny" CI-smoke scale.
        assert {"smoke", "reduced", "full"} <= set(module.SCALES)

    @pytest.mark.parametrize(
        "name", ["exp1", "exp2", "exp3", "exp4", "exp5", "exp6"]
    )
    def test_unknown_scale_raises(self, name):
        with pytest.raises(ConfigurationError):
            EXPERIMENTS[name].configs("gigantic")


class TestExp1Configs:
    def test_full_matches_paper_extents(self):
        confs = exp1_swarm_size.configs("full")
        functions = {c.function for c in confs}
        assert functions == set(PAPER_FUNCTIONS)
        nodes = {c.nodes for c in confs}
        assert nodes == {1, 10, 100, 1000}
        particles = {c.particles_per_node for c in confs}
        assert particles == {1, 4, 8, 16, 32}
        assert all(c.repetitions == 50 for c in confs)
        # e = 1000*n and r = k everywhere.
        assert all(c.total_evaluations == 1000 * c.nodes for c in confs)
        assert all(c.gossip_cycle == c.particles_per_node for c in confs)

    def test_point_count(self):
        assert len(exp1_swarm_size.configs("full")) == 6 * 4 * 5

    def test_seed_propagates(self):
        confs = exp1_swarm_size.configs("smoke", seed=123)
        assert all(c.seed == 123 for c in confs)


class TestExp2Configs:
    def test_full_extents(self):
        confs = exp2_network_size.configs("full")
        assert {c.total_evaluations for c in confs} == {2**20}
        assert max(c.nodes for c in confs) == 2**16
        assert all(c.evaluations_per_node >= 1 for c in confs)

    def test_infeasible_points_skipped(self):
        confs = exp2_network_size.configs("full")
        assert all(
            c.total_evaluations // c.nodes >= c.particles_per_node for c in confs
        )


class TestExp3Configs:
    def test_k_fixed_at_16(self):
        confs = exp3_cycle_length.configs("full")
        assert {c.particles_per_node for c in confs} == {16}

    def test_cycle_sweep(self):
        confs = exp3_cycle_length.configs("full")
        assert {c.gossip_cycle for c in confs} == set(range(2, 66, 2))


class TestExp4Configs:
    def test_threshold_set(self):
        confs = exp4_time_to_quality.configs("full")
        assert all(c.quality_threshold == 1e-10 for c in confs)

    def test_node_range(self):
        confs = exp4_time_to_quality.configs("full")
        assert max(c.nodes for c in confs) == 2**10
        assert min(c.nodes for c in confs) == 1


class TestExp5Overhead:
    def test_smoke_run_and_report(self):
        from repro.experiments import exp5_overhead

        data = exp5_overhead.run(scale="smoke", seed=3)
        report = exp5_overhead.report(data)
        assert "Bytes/second" in report
        assert "few bytes per second" in report

    def test_measured_counts_positive(self):
        from repro.experiments import exp5_overhead

        cfg = exp5_overhead.configs("smoke", seed=3)[0]
        counts = exp5_overhead.measured_overhead(cfg)
        # ≈2 NEWSCAST messages per node per cycle (one exchange = 2)
        assert 1.0 < counts["newscast_msgs"] < 3.0
        # coordination: 1 offer per node per cycle + replies in [0, 1].
        assert 0.9 < counts["coordination_msgs"] < 2.1
