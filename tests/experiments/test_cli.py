"""Tests for the command-line entry point."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_exp5_smoke_prints_report(self, capsys):
        code = main(["exp5", "--scale", "smoke", "--quiet", "--seed", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Experiment 5" in out
        assert "Bytes/second" in out

    def test_csv_dump(self, tmp_path, capsys):
        path = tmp_path / "runs.csv"
        code = main(
            ["exp5", "--scale", "smoke", "--quiet", "--csv", str(path)]
        )
        assert code == 0
        text = path.read_text()
        assert text.startswith("function,")
        assert "sphere" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["exp99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["exp5", "--scale", "galactic"])

    def test_progress_on_stderr_by_default(self, capsys):
        main(["exp5", "--scale", "smoke"])
        err = capsys.readouterr().err
        assert "exp5:smoke" in err
