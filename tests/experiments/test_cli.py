"""Tests for the command-line entry point."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_exp5_smoke_prints_report(self, capsys):
        code = main(["exp5", "--scale", "smoke", "--quiet", "--seed", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Experiment 5" in out
        assert "Bytes/second" in out

    def test_csv_dump(self, tmp_path, capsys):
        path = tmp_path / "runs.csv"
        code = main(
            ["exp5", "--scale", "smoke", "--quiet", "--csv", str(path)]
        )
        assert code == 0
        text = path.read_text()
        assert text.startswith("function,")
        assert "sphere" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["exp99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["exp5", "--scale", "galactic"])

    def test_progress_on_stderr_by_default(self, capsys):
        main(["exp5", "--scale", "smoke"])
        err = capsys.readouterr().err
        assert "exp5:smoke" in err

    def test_workers_flag_runs_distributed(self, capsys):
        code = main(
            ["exp5", "--scale", "smoke", "--quiet", "--workers", "2",
             "--seed", "7"]
        )
        assert code == 0
        assert "Experiment 5" in capsys.readouterr().out

    def test_spool_flag_runs_and_resumes(self, tmp_path, capsys):
        from repro.distributed.spool import JobQueue

        spool = str(tmp_path / "spool")
        args = ["exp5", "--scale", "smoke", "--quiet", "--seed", "7",
                "--spool", spool]
        assert main(args) == 0
        assert "Experiment 5" in capsys.readouterr().out
        counts = JobQueue(spool).counts()
        assert counts["results"] == 1 and counts["pending"] == 0
        # Second run resumes from the spool: nothing is re-executed,
        # the report is rebuilt from the stored records.
        assert main(args) == 0
        assert "Experiment 5" in capsys.readouterr().out
        assert JobQueue(spool).counts()["results"] == 1

    def test_invalid_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["exp5", "--workers", "0"])
