"""Overlay equivalence: array backend vs object backend.

The fast engine's claim is that its array overlays are *the same
topologies* the reference engine simulates, so the graph statistics
the paper's arguments rest on — degree concentration, clustering,
connectivity, path length — must match between backends on the same
spec.  Static overlays must match edge-for-edge (both backends derive
them from the same seed-tree stream); gossip overlays must match
statistically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.node import OptimizationNodeSpec, build_optimization_node
from repro.functions.base import get_function
from repro.scenario import Scenario, Session
from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.topology.analysis import (
    overlay_metrics,
    overlay_metrics_from_views,
    path_length_sample_from_views,
)
from repro.topology.array_views import NewscastArrayViews
from repro.topology.newscast import bootstrap_views
from repro.topology.provider import (
    NetworkViewProvider,
    make_array_provider,
    static_adjacency,
)
from repro.utils.config import (
    CoordinationConfig,
    ExperimentConfig,
    NewscastConfig,
    PSOConfig,
)
from repro.utils.rng import SeedSequenceTree

N, C = 48, 8


def reference_newscast_overlay(cycles: int, seed: int = 31) -> Network:
    """A reference-engine network after `cycles` of NEWSCAST mixing."""
    tree = SeedSequenceTree(seed)
    spec = OptimizationNodeSpec(
        function=get_function("sphere"),
        pso=PSOConfig(particles=4),
        newscast=NewscastConfig(view_size=C),
        coordination=CoordinationConfig(),
        rng_tree=tree,
        evals_per_cycle=4,
        budget_per_node=10**9,
    )
    net = Network(rng=tree.rng("network"))
    net.populate(N, factory=lambda node: build_optimization_node(node, spec))
    bootstrap_views(net, tree.rng("bootstrap"))
    engine = CycleDrivenEngine(net, rng=tree.rng("engine"))
    engine.run(cycles)
    return net


def array_newscast_overlay(cycles: int, seed: int = 31) -> NewscastArrayViews:
    provider = NewscastArrayViews(N, C, np.random.default_rng(seed))
    live = np.arange(N, dtype=np.int64)
    provider.bootstrap(live)
    alive = np.ones(N, dtype=bool)
    for cycle in range(cycles):
        provider.begin_cycle(live, alive, float(cycle))
    return provider


class TestNewscastStatistics:
    """Array NEWSCAST reproduces the object overlay's graph shape."""

    def test_overlay_statistics_match_reference(self):
        ref = overlay_metrics(reference_newscast_overlay(cycles=12))
        live = list(range(N))
        arr = overlay_metrics_from_views(
            array_newscast_overlay(cycles=12).neighbor_matrix(), live
        )
        # Identical structural constants.
        assert arr.nodes == ref.nodes == N
        assert arr.mean_out_degree == pytest.approx(ref.mean_out_degree, abs=0.5)
        assert arr.weakly_connected
        # The clustering and in-degree statistics land in the same
        # band — NEWSCAST's high view correlation, far from the
        # random-graph baseline (c/n ~ 0.17 here).
        assert arr.clustering == pytest.approx(ref.clustering, abs=0.15)
        assert arr.clustering > 0.4
        assert arr.in_degree_std == pytest.approx(ref.in_degree_std, rel=0.5)
        assert arr.max_in_degree <= 3 * ref.max_in_degree

    def test_path_length_short_like_random_graph(self):
        provider = array_newscast_overlay(cycles=12)
        length = path_length_sample_from_views(
            provider.neighbor_matrix(), range(N),
            pairs=150, rng=np.random.default_rng(5),
        )
        # log(48)/log(8) ~ 1.9: a couple of hops, like the reference.
        assert 1.0 <= length <= 3.0


class TestStaticParity:
    """Static overlays are bit-identical across backends."""

    @pytest.mark.parametrize("topology", ["ring", "star", "kregular"])
    def test_same_adjacency_from_same_tree(self, topology):
        config = ExperimentConfig(
            function="sphere", nodes=16, particles_per_node=4,
            total_evaluations=16 * 4 * 4, gossip_cycle=4, seed=9,
        )
        tree = SeedSequenceTree(9).subtree("rep", 0)
        provider = make_array_provider(topology, config, tree)
        adjacency, _ = static_adjacency(
            topology, 16, config.newscast.view_size,
            SeedSequenceTree(9).subtree("rep", 0).rng("topology", topology),
        )
        for nid in range(16):
            assert sorted(provider.known_peers(nid)) == sorted(adjacency[nid])

    def test_network_view_provider_adapts_object_backend(self):
        net = reference_newscast_overlay(cycles=6)
        adapter = NetworkViewProvider(net, "newscast")
        matrix = adapter.neighbor_matrix()
        for node in net.live_nodes():
            peers = node.protocol("newscast").known_peers(node)
            row = matrix[node.node_id]
            assert sorted(row[row >= 0].tolist()) == sorted(peers)
        # Sampling draws only from the node's own view.
        rng = np.random.default_rng(0)
        targets = adapter.gossip_targets(net.live_ids(), rng)
        for nid, peer in zip(net.live_ids(), targets):
            assert int(peer) in set(adapter.known_peers(nid))


class TestEngineLevelEquivalence:
    """Session-level: same scenario, both engines, matching overlays."""

    def scenario(self, topology):
        return Scenario(
            function="sphere", nodes=32, particles_per_node=4,
            total_evaluations=32 * 4 * 12, gossip_cycle=4,
            repetitions=4, seed=17, topology=topology,
        )

    @pytest.mark.parametrize("topology", ["newscast", "cyclon", "ring",
                                          "kregular", "star"])
    def test_quality_distributions_overlap(self, topology):
        base = self.scenario(topology)
        ref = Session(base).run()
        fast = Session(base.with_(engine="fast")).run()
        log_ref = np.mean([np.log10(max(r.quality, 1e-300))
                           for r in ref.records])
        log_fast = np.mean([np.log10(max(r.quality, 1e-300))
                            for r in fast.records])
        assert abs(log_ref - log_fast) < 1.5

    def test_star_hub_death_kills_coordination_on_fast_engine(self):
        from repro.core.fastpath import FastEngine

        config = self.scenario("star").to_experiment_config()
        engine = FastEngine(config, topology="star")
        engine.budget = None
        engine.run(5)
        engine.crash_node(0)  # the hub
        before = engine.adoptions
        engine.run(10)
        assert engine.adoptions == before  # nobody reaches anybody

    def test_newscast_survives_crash_wave_on_fast_engine(self):
        from repro.core.fastpath import FastEngine

        config = self.scenario("newscast").to_experiment_config()
        engine = FastEngine(config, topology="newscast")
        engine.budget = None
        engine.run(5)
        for nid in range(12):
            engine.crash_node(nid)
        before = engine.adoptions
        engine.run(10)
        assert engine.adoptions > before
