"""Tests for partial views — including the NEWSCAST merge properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.views import NodeDescriptor, PartialView


def d(nid: int, ts: float) -> NodeDescriptor:
    return NodeDescriptor(nid, ts)


class TestDescriptor:
    def test_fresher_than(self):
        assert d(1, 2.0).fresher_than(d(1, 1.0))
        assert not d(1, 1.0).fresher_than(d(1, 1.0))
        assert not d(1, 0.5).fresher_than(d(1, 1.0))

    def test_frozen_and_hashable(self):
        desc = d(1, 2.0)
        assert hash(desc) == hash(d(1, 2.0))
        with pytest.raises(AttributeError):
            desc.node_id = 5  # type: ignore[misc]


class TestPartialViewBasics:
    def test_empty(self):
        view = PartialView(4)
        assert len(view) == 0
        assert view.ids() == []
        assert view.sample(np.random.default_rng(0)) is None
        assert view.oldest() is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PartialView(0)

    def test_initial_entries_deduplicated(self):
        view = PartialView(4, [d(1, 1.0), d(1, 3.0), d(2, 2.0)])
        assert len(view) == 2
        assert view.timestamp_of(1) == 3.0

    def test_contains_and_timestamp(self):
        view = PartialView(4, [d(7, 1.5)])
        assert 7 in view
        assert 8 not in view
        assert view.timestamp_of(7) == 1.5
        assert view.timestamp_of(8) is None

    def test_remove(self):
        view = PartialView(4, [d(1, 1.0)])
        assert view.remove(1)
        assert not view.remove(1)
        assert len(view) == 0

    def test_oldest(self):
        view = PartialView(4, [d(1, 5.0), d(2, 1.0), d(3, 3.0)])
        assert view.oldest().node_id == 2

    def test_copy_is_independent(self):
        view = PartialView(4, [d(1, 1.0)])
        clone = view.copy()
        clone.remove(1)
        assert 1 in view


class TestMerge:
    def test_keeps_freshest_per_id(self):
        view = PartialView(4, [d(1, 1.0)])
        view.merge([d(1, 5.0)], own_id=99)
        assert view.timestamp_of(1) == 5.0

    def test_stale_incoming_ignored(self):
        view = PartialView(4, [d(1, 5.0)])
        view.merge([d(1, 1.0)], own_id=99)
        assert view.timestamp_of(1) == 5.0

    def test_own_entry_dropped(self):
        view = PartialView(4, [d(1, 1.0)])
        view.merge([d(99, 10.0), d(2, 2.0)], own_id=99)
        assert 99 not in view
        assert 2 in view

    def test_truncates_to_freshest(self):
        view = PartialView(2, [d(1, 1.0), d(2, 2.0)])
        view.merge([d(3, 3.0), d(4, 4.0)], own_id=99)
        assert sorted(view.ids()) == [3, 4]

    def test_truncation_tiebreak_deterministic(self):
        view = PartialView(2)
        view.merge([d(1, 1.0), d(2, 1.0), d(3, 1.0)], own_id=99)
        # Equal timestamps: ids descending win.
        assert sorted(view.ids()) == [2, 3]

    def test_sample_uniform_over_entries(self):
        view = PartialView(8, [d(i, 1.0) for i in range(4)])
        rng = np.random.default_rng(0)
        counts = {i: 0 for i in range(4)}
        for _ in range(4000):
            counts[view.sample(rng).node_id] += 1
        for c in counts.values():
            assert 800 < c < 1200


# -- property-based merge laws -----------------------------------------------

descriptor_lists = st.lists(
    st.builds(
        NodeDescriptor,
        node_id=st.integers(min_value=0, max_value=30),
        timestamp=st.floats(min_value=0, max_value=100, allow_nan=False),
    ),
    max_size=30,
)


@settings(max_examples=80, deadline=None)
@given(entries=descriptor_lists, incoming=descriptor_lists,
       capacity=st.integers(1, 10), own=st.integers(0, 30))
def test_property_merge_invariants(entries, incoming, capacity, own):
    """After any merge: size bound, no self entry, no duplicate ids,
    and every kept id carries its freshest known timestamp."""
    view = PartialView(capacity, entries)
    # Construction already truncates to the capacity-freshest entries;
    # the merge only ever sees what survived, so "freshest known" is
    # defined over the view's actual pre-merge contents plus the
    # incoming batch (not the raw constructor list).
    known = list(view) + list(incoming)
    view.merge(incoming, own_id=own)

    assert len(view) <= capacity
    assert own not in view
    ids = view.ids()
    assert len(ids) == len(set(ids))

    freshest: dict[int, float] = {}
    for desc in known:
        if desc.timestamp > freshest.get(desc.node_id, -1.0):
            freshest[desc.node_id] = desc.timestamp
    for desc in view:
        assert desc.timestamp == freshest[desc.node_id]


@settings(max_examples=60, deadline=None)
@given(entries=descriptor_lists, incoming=descriptor_lists,
       capacity=st.integers(1, 10), own=st.integers(0, 30))
def test_property_merge_idempotent(entries, incoming, capacity, own):
    """Merging the same batch twice equals merging it once."""
    once = PartialView(capacity, entries)
    once.merge(incoming, own_id=own)
    twice = PartialView(capacity, entries)
    twice.merge(incoming, own_id=own)
    twice.merge(incoming, own_id=own)
    assert sorted(once.descriptors()) == sorted(twice.descriptors())


@settings(max_examples=60, deadline=None)
@given(a=descriptor_lists, b=descriptor_lists, own=st.integers(0, 30))
def test_property_merge_order_insensitive_when_capacity_suffices(a, b, own):
    """With no truncation pressure, merge order cannot matter."""
    cap = 128  # > max possible distinct ids
    ab = PartialView(cap)
    ab.merge(a, own_id=own)
    ab.merge(b, own_id=own)
    ba = PartialView(cap)
    ba.merge(b, own_id=own)
    ba.merge(a, own_id=own)
    assert sorted(ab.descriptors()) == sorted(ba.descriptors())


@settings(max_examples=60, deadline=None)
@given(entries=descriptor_lists, capacity=st.integers(1, 10))
def test_property_truncation_keeps_freshest(entries, capacity):
    """Truncation never keeps an entry strictly staler than one it
    dropped."""
    view = PartialView(capacity)
    view.merge(entries, own_id=-1)
    kept = {desc.node_id: desc.timestamp for desc in view}
    freshest: dict[int, float] = {}
    for desc in entries:
        if desc.timestamp > freshest.get(desc.node_id, -1.0):
            freshest[desc.node_id] = desc.timestamp
    dropped_ts = [ts for nid, ts in freshest.items() if nid not in kept]
    if dropped_ts and kept:
        assert min(kept.values()) >= max(dropped_ts) or len(kept) == capacity
        # Stronger: every kept ts >= every dropped ts when full.
        if len(kept) == capacity:
            assert min(kept.values()) >= max(dropped_ts) - 1e-12
