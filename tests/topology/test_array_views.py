"""Array topology kernels vs the object reference implementation.

The merge kernel is property-tested directly against
:meth:`PartialView.merge` — same laws the object implementation pins
(idempotence, size bound, freshness selection, drop-self), plus exact
set equality on integer timestamps including the id tie-break.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.array_views import (
    CyclonArrayViews,
    NewscastArrayViews,
    OracleViews,
    StaticArrayViews,
    TS_SCALE,
    merge_candidates,
    merge_views,
)
from repro.topology.static import ring_lattice, star_graph
from repro.topology.views import NodeDescriptor, PartialView


def random_view(rng, capacity, id_pool, fill=None):
    """A -1-padded (ids, ts) row with distinct ids, any order."""
    n = int(rng.integers(0, min(capacity, id_pool) + 1)) if fill is None else fill
    ids = np.full(capacity, -1, dtype=np.int64)
    ts = np.full(capacity, -1, dtype=np.int64)
    picks = rng.permutation(id_pool)[:n]
    ids[:n] = picks
    ts[:n] = rng.integers(0, 60, n)
    return ids, ts


def as_partial_view(capacity, ids, ts):
    return PartialView(
        capacity,
        [NodeDescriptor(int(i), float(t)) for i, t in zip(ids, ts) if i >= 0],
    )


def view_set(ids, ts):
    return {(int(i), int(t)) for i, t in zip(ids, ts) if i >= 0}


class TestMergeKernel:
    def test_matches_partial_view_merge_exactly(self):
        rng = np.random.default_rng(7)
        for trial in range(500):
            c = int(rng.integers(1, 9))
            pool = int(rng.integers(2, 14))
            own_ids, own_ts = random_view(rng, c, pool)
            inc_ids, inc_ts = random_view(rng, int(rng.integers(1, 11)), pool)
            self_id = int(rng.integers(pool))

            out_ids, out_ts = merge_views(
                own_ids[None], own_ts[None], inc_ids[None], inc_ts[None],
                np.array([self_id]), c,
            )
            pv = as_partial_view(c, own_ids, own_ts)
            pv.merge(
                [NodeDescriptor(int(i), float(t))
                 for i, t in zip(inc_ids, inc_ts) if i >= 0],
                own_id=self_id,
            )
            ref = {(d.node_id, int(d.timestamp)) for d in pv}
            assert view_set(out_ids[0], out_ts[0]) == ref, trial
            # Output is freshest-first with empties at the tail.
            valid = out_ids[0] >= 0
            assert not np.any(valid[1:] & ~valid[:-1])
            vt = out_ts[0][valid]
            assert np.all(np.diff(vt) <= 0)

    def test_idempotent(self):
        rng = np.random.default_rng(11)
        for _ in range(100):
            c = int(rng.integers(1, 8))
            own_ids, own_ts = random_view(rng, c, 12)
            self_id = 99
            once = merge_views(own_ids[None], own_ts[None], own_ids[None],
                               own_ts[None], np.array([self_id]), c)
            twice = merge_views(once[0], once[1], own_ids[None], own_ts[None],
                                np.array([self_id]), c)
            assert view_set(once[0][0], once[1][0]) == view_set(
                twice[0][0], twice[1][0]
            )

    def test_size_bound_and_self_drop(self):
        rng = np.random.default_rng(13)
        for _ in range(100):
            c = int(rng.integers(1, 6))
            cand_ids = rng.integers(-1, 10, (3, 4 * c))
            cand_ts = rng.integers(0, 50, (3, 4 * c))
            selfs = rng.integers(0, 10, 3)
            out_ids, _ = merge_candidates(cand_ids, cand_ts, selfs, c)
            assert np.all((out_ids >= 0).sum(axis=1) <= c)
            assert not np.any(out_ids == selfs[:, None])

    def test_dedup_keeps_freshest(self):
        out_ids, out_ts = merge_views(
            np.array([[3, -1]]), np.array([[5, -1]]),
            np.array([[3, 3]]), np.array([[9, 2]]),
            np.array([7]), 2,
        )
        assert view_set(out_ids[0], out_ts[0]) == {(3, 9)}

    def test_truncation_tie_breaks_by_descending_id(self):
        out_ids, out_ts = merge_views(
            np.array([[1, 2]]), np.array([[5, 5]]),
            np.array([[8, 9]]), np.array([[5, 5]]),
            np.array([0]), 2,
        )
        assert view_set(out_ids[0], out_ts[0]) == {(8, 5), (9, 5)}


class TestNewscastArrayViews:
    def setup_overlay(self, n=64, c=8, seed=3):
        provider = NewscastArrayViews(n, c, np.random.default_rng(seed))
        live = np.arange(n, dtype=np.int64)
        provider.bootstrap(live)
        return provider, live, np.ones(n, dtype=bool)

    def test_views_fill_and_stay_duplicate_free(self):
        provider, live, alive = self.setup_overlay()
        for cycle in range(10):
            provider.begin_cycle(live, alive, float(cycle))
        ids = provider.neighbor_matrix()[live]
        assert np.all((ids >= 0).sum(axis=1) == provider.capacity)
        for nid in range(ids.shape[0]):
            row = ids[nid][ids[nid] >= 0].tolist()
            assert len(set(row)) == len(row)
            assert nid not in row

    def test_exchanges_counted_per_live_initiator(self):
        provider, live, alive = self.setup_overlay()
        provider.begin_cycle(live, alive, 0.0)
        assert provider.exchanges == live.shape[0]

    def test_dead_contacts_fail_silently_and_age_out(self):
        provider, live, alive = self.setup_overlay()
        for cycle in range(3):
            provider.begin_cycle(live, alive, float(cycle))
        dead = set(range(16))
        alive[:16] = False
        survivors = live[16:]
        for cycle in range(3, 18):
            provider.begin_cycle(survivors, alive, float(cycle))
        assert provider.failed_exchanges > 0
        # Self-repair: stale entries pointing at the dead age out.
        ids = provider.neighbor_matrix()[survivors]
        stale = sum(1 for row in ids for p in row[row >= 0] if int(p) in dead)
        total = int((ids >= 0).sum())
        assert stale / total < 0.02

    def test_join_bootstraps_one_live_contact(self):
        provider, live, alive = self.setup_overlay()
        provider.begin_cycle(live, alive, 0.0)
        provider.ensure_capacity(65)
        provider.on_join(64, live, now=1.0)
        peers = provider.known_peers(64)
        assert len(peers) == 1 and peers[0] in set(live.tolist())

    def test_timestamps_advance_with_cycles(self):
        provider, live, alive = self.setup_overlay()
        for cycle in range(4):
            provider.begin_cycle(live, alive, float(cycle))
        assert int(provider._ts[live].max()) >= 3 * TS_SCALE


class TestCyclonArrayViews:
    def setup_overlay(self, n=64, c=8, seed=5):
        provider = CyclonArrayViews(n, c, np.random.default_rng(seed))
        live = np.arange(n, dtype=np.int64)
        provider.bootstrap(live)
        return provider, live, np.ones(n, dtype=bool)

    def test_views_keep_fixed_size(self):
        provider, live, alive = self.setup_overlay()
        for cycle in range(12):
            provider.begin_cycle(live, alive, float(cycle))
        counts = (provider.neighbor_matrix()[live] >= 0).sum(axis=1)
        # Shuffles swap entries: views stay essentially full.
        assert counts.min() >= provider.capacity - 2
        assert counts.max() <= provider.capacity

    def test_no_self_or_duplicates(self):
        provider, live, alive = self.setup_overlay()
        for cycle in range(8):
            provider.begin_cycle(live, alive, float(cycle))
        ids = provider.neighbor_matrix()[live]
        for nid in range(ids.shape[0]):
            row = ids[nid][ids[nid] >= 0].tolist()
            assert len(set(row)) == len(row)
            assert nid not in row

    def test_dead_partner_entry_removed_permanently(self):
        provider, live, alive = self.setup_overlay()
        for cycle in range(4):
            provider.begin_cycle(live, alive, float(cycle))
        alive[:8] = False
        survivors = live[8:]
        for cycle in range(4, 24):
            provider.begin_cycle(survivors, alive, float(cycle))
        assert provider.failed_exchanges > 0
        ids = provider.neighbor_matrix()[survivors]
        stale = sum(1 for row in ids for p in row[row >= 0] if int(p) < 8)
        assert stale == 0  # oldest-selection flushes all dead entries

    def test_shuffle_length_validation(self):
        from repro.utils.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            CyclonArrayViews(4, 4, np.random.default_rng(0), shuffle_length=9)


class TestStaticAndOracle:
    def test_ring_matrix_matches_builder(self):
        adj = ring_lattice(10, radius=2)
        provider = StaticArrayViews(adj, np.random.default_rng(0), name="ring")
        for nid, peers in adj.items():
            assert sorted(provider.known_peers(nid)) == sorted(peers)

    def test_star_joiner_learns_hub_others_stay_isolated(self):
        star = StaticArrayViews(
            star_graph(6, center=0), np.random.default_rng(0),
            name="star", join_contacts=[0],
        )
        star.ensure_capacity(7)
        star.on_join(6, np.arange(6, dtype=np.int64), now=2.0)
        assert star.known_peers(6) == [0]

        ring = StaticArrayViews(ring_lattice(6), np.random.default_rng(0))
        ring.ensure_capacity(7)
        ring.on_join(6, np.arange(6, dtype=np.int64), now=2.0)
        assert ring.known_peers(6) == []

    def test_gossip_targets_only_from_views(self):
        adj = ring_lattice(12, radius=1)
        provider = StaticArrayViews(adj, np.random.default_rng(0))
        live = np.arange(12, dtype=np.int64)
        rng = np.random.default_rng(1)
        for _ in range(20):
            targets = provider.gossip_targets(live, rng)
            for nid, peer in zip(live, targets):
                assert int(peer) in adj[int(nid)]

    def test_oracle_draws_uniform_live_peer(self):
        provider = OracleViews()
        live = np.arange(5, dtype=np.int64) * 3  # sparse ids
        provider.begin_cycle(live, np.ones(13, dtype=bool), 0.0)
        rng = np.random.default_rng(2)
        targets = provider.gossip_targets(live, rng)
        assert targets.shape == live.shape
        assert all(int(t) in set(live.tolist()) for t in targets)
        assert not np.any(targets == live)
        assert provider.known_peers(0) == [3, 6, 9, 12]
