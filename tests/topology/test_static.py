"""Tests for static topology builders and their protocol."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.simulator.network import Node
from repro.topology.static import (
    StaticTopologyProtocol,
    complete_graph,
    grid_2d,
    k_regular_random,
    ring_lattice,
    small_world,
    star_graph,
)


def to_nx(adj: dict[int, list[int]]) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(adj)
    for i, nbrs in adj.items():
        for j in nbrs:
            g.add_edge(i, j)
    return g


class TestBuilders:
    def test_complete(self):
        adj = complete_graph(5)
        assert all(len(v) == 4 for v in adj.values())
        assert all(i not in adj[i] for i in adj)

    def test_ring_radius1(self):
        adj = ring_lattice(6)
        assert all(len(v) == 2 for v in adj.values())
        assert nx.is_connected(to_nx(adj))

    def test_ring_radius2(self):
        adj = ring_lattice(8, radius=2)
        assert all(len(v) == 4 for v in adj.values())

    def test_tiny_ring(self):
        adj = ring_lattice(2)
        assert adj == {0: [1], 1: [0]}

    def test_star(self):
        adj = star_graph(6, center=0)
        assert len(adj[0]) == 5
        assert all(adj[i] == [0] for i in range(1, 6))

    def test_star_custom_center(self):
        adj = star_graph(4, center=2)
        assert len(adj[2]) == 3
        assert adj[0] == [2]

    def test_star_invalid_center(self):
        with pytest.raises(ValueError):
            star_graph(4, center=4)

    def test_k_regular_random_connectivity(self, rng):
        adj = k_regular_random(40, 4, rng)
        g = to_nx(adj)
        assert nx.is_connected(g)
        # Out-picks are k, symmetrized degree >= k.
        assert all(len(adj[i]) >= 4 for i in adj)

    def test_k_regular_bounds(self, rng):
        with pytest.raises(ValueError):
            k_regular_random(1, 1, rng)
        with pytest.raises(ValueError):
            k_regular_random(5, 5, rng)

    def test_small_world_connected_and_rewired(self, rng):
        adj = small_world(60, 4, 0.3, rng)
        g = to_nx(adj)
        assert nx.is_connected(g)
        lattice = to_nx(ring_lattice(60, 2))
        assert set(g.edges) != set(lattice.edges)  # rewiring happened

    def test_small_world_beta_zero_is_lattice(self, rng):
        adj = small_world(20, 4, 0.0, rng)
        assert set(to_nx(adj).edges) == set(to_nx(ring_lattice(20, 2)).edges)

    def test_small_world_validation(self, rng):
        with pytest.raises(ValueError):
            small_world(10, 3, 0.1, rng)  # odd k
        with pytest.raises(ValueError):
            small_world(4, 4, 0.1, rng)  # n <= k
        with pytest.raises(ValueError):
            small_world(10, 4, 1.5, rng)

    def test_grid_torus_degree(self):
        adj = grid_2d(4, 5, torus=True)
        assert all(len(v) == 4 for v in adj.values())
        assert nx.is_connected(to_nx(adj))

    def test_grid_open_boundary(self):
        adj = grid_2d(3, 3, torus=False)
        corner_deg = len(adj[0])
        center_deg = len(adj[4])
        assert corner_deg == 2
        assert center_deg == 4

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            grid_2d(0, 3)


class TestStaticTopologyProtocol:
    def test_sampling_restricted_to_neighbors(self, rng):
        proto = StaticTopologyProtocol([3, 5, 7])
        node = Node(0)
        for _ in range(60):
            assert proto.sample_peer(node, rng) in (3, 5, 7)

    def test_empty_neighbors(self, rng):
        proto = StaticTopologyProtocol([])
        assert proto.sample_peer(Node(0), rng) is None
        assert proto.known_peers(Node(0)) == []

    def test_deduplication(self):
        proto = StaticTopologyProtocol([1, 1, 2, 2, 3])
        assert proto.neighbors == [1, 2, 3]

    def test_next_cycle_is_noop(self):
        proto = StaticTopologyProtocol([1])
        proto.next_cycle(Node(0), None)  # must not raise
