"""NEWSCAST behaviour tests against the protocol's published claims.

The claims (paper Sec. 3.3.1 and Jelasity et al.): emergent overlay is
close to a random graph with out-degree ``c``; strongly connected in
practice for ``c ≈ 20``; views are near-uniform samples; crashed nodes
age out of views (self-repair).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.topology.analysis import overlay_digraph, overlay_metrics
from repro.topology.newscast import NewscastProtocol, bootstrap_views
from repro.utils.config import NewscastConfig
from repro.utils.rng import SeedSequenceTree


def build_newscast_network(
    n: int, view_size: int = 20, seed: int = 0, contacts: int | None = None
) -> tuple[Network, CycleDrivenEngine]:
    tree = SeedSequenceTree(seed)
    net = Network(rng=tree.rng("network"))
    cfg = NewscastConfig(view_size=view_size)

    def factory(node):
        node.attach(
            NewscastProtocol.PROTOCOL_NAME,
            NewscastProtocol(cfg, tree.rng("node", node.node_id)),
        )

    net.populate(n, factory=factory)
    bootstrap_views(net, tree.rng("bootstrap"), contacts_per_node=contacts)
    engine = CycleDrivenEngine(net, rng=tree.rng("engine"))
    return net, engine


class TestBootstrap:
    def test_every_node_gets_contacts(self):
        net, _ = build_newscast_network(50, contacts=3)
        for node in net.live_nodes():
            proto = node.protocol("newscast")
            assert 1 <= proto.view_size <= 3
            assert node.node_id not in proto.view

    def test_single_node_network_no_contacts(self):
        net, engine = build_newscast_network(1)
        assert net.node(0).protocol("newscast").view_size == 0
        engine.run(3)  # must not crash

    def test_default_fills_view(self):
        net, _ = build_newscast_network(50, view_size=10)
        for node in net.live_nodes():
            assert node.protocol("newscast").view_size == 10

    def test_contacts_capped_at_population(self):
        net, _ = build_newscast_network(3, contacts=10)
        for node in net.live_nodes():
            assert node.protocol("newscast").view_size <= 2

    def test_invalid_contacts(self):
        net, _ = build_newscast_network(5)
        with pytest.raises(ValueError):
            bootstrap_views(net, np.random.default_rng(0), contacts_per_node=0)


class TestViewDynamics:
    def test_views_fill_to_capacity(self):
        net, engine = build_newscast_network(60, view_size=10)
        engine.run(15)
        sizes = [node.protocol("newscast").view_size for node in net.live_nodes()]
        assert np.mean(sizes) > 9.0

    def test_view_never_contains_self(self):
        net, engine = build_newscast_network(30, view_size=8)
        engine.run(20)
        for node in net.live_nodes():
            assert node.node_id not in node.protocol("newscast").view

    def test_views_capped_at_c(self):
        net, engine = build_newscast_network(60, view_size=7)
        engine.run(20)
        for node in net.live_nodes():
            assert node.protocol("newscast").view_size <= 7

    def test_exchange_counters_advance(self):
        net, engine = build_newscast_network(20)
        engine.run(10)
        initiated = sum(
            node.protocol("newscast").exchanges_initiated for node in net.live_nodes()
        )
        received = sum(
            node.protocol("newscast").exchanges_received for node in net.live_nodes()
        )
        assert initiated == received
        assert initiated > 100  # ~20 nodes * 10 cycles


class TestEmergentOverlay:
    def test_connectivity_at_c20(self):
        net, engine = build_newscast_network(200, view_size=20, seed=3)
        engine.run(30)
        metrics = overlay_metrics(net)
        assert metrics.weakly_connected
        assert metrics.mean_out_degree > 19.0

    def test_in_degree_concentrates(self):
        """Random-graph-like overlay: in-degree spread stays moderate
        (no hubs), per the NEWSCAST random-graph claim."""
        net, engine = build_newscast_network(200, view_size=20, seed=3)
        engine.run(30)
        metrics = overlay_metrics(net)
        assert metrics.max_in_degree < 4 * metrics.mean_out_degree

    def test_views_mix_over_time(self):
        """Entries turn over: a node's view after mixing differs from
        its bootstrap contacts."""
        net, engine = build_newscast_network(100, view_size=5, seed=1, contacts=5)
        before = {
            node.node_id: set(node.protocol("newscast").view.ids())
            for node in net.live_nodes()
        }
        engine.run(25)
        changed = sum(
            set(net.node(nid).protocol("newscast").view.ids()) != view
            for nid, view in before.items()
        )
        assert changed > 90

    def test_peer_sampling_near_uniform(self):
        """Aggregated over time, sampled peers cover the population
        without heavy bias (coefficient of variation < 0.7)."""
        net, engine = build_newscast_network(64, view_size=16, seed=5)
        engine.run(10)
        rng = np.random.default_rng(9)
        counts = np.zeros(64)
        for _ in range(40):
            engine.run(1)
            for node in net.live_nodes():
                peer = node.protocol("newscast").sample_peer(node, rng)
                if peer is not None:
                    counts[peer] += 1
        assert counts.min() > 0
        assert counts.std() / counts.mean() < 0.7


class TestSelfRepair:
    def test_crashed_nodes_age_out(self):
        net, engine = build_newscast_network(120, view_size=10, seed=7)
        engine.run(15)
        for nid in range(30):  # kill 25% of the network
            net.crash(nid)
        stale_before = overlay_metrics(net).stale_fraction
        assert stale_before > 0.05  # crash left dangling entries
        engine.run(25)
        stale_after = overlay_metrics(net).stale_fraction
        assert stale_after < stale_before / 2
        assert stale_after < 0.05

    def test_overlay_reconnects_after_crash_wave(self):
        net, engine = build_newscast_network(150, view_size=20, seed=7)
        engine.run(15)
        for nid in range(50):
            net.crash(nid)
        engine.run(15)
        assert overlay_metrics(net).weakly_connected

    def test_joiner_is_absorbed(self):
        net, engine = build_newscast_network(40, view_size=10, seed=2)
        engine.run(10)
        tree = SeedSequenceTree(123)
        joiner = net.create_node(birth_cycle=engine.cycle)
        proto = NewscastProtocol(NewscastConfig(view_size=10), tree.rng("j"))
        joiner.attach("newscast", proto)
        proto.on_join(joiner, engine)
        assert proto.view_size == 1  # bootstrap contact
        engine.run(10)
        assert proto.view_size > 5
        # And others learned about the joiner:
        g = overlay_digraph(net)
        assert g.in_degree(joiner.node_id) > 0


class TestDeterminism:
    def test_same_seed_same_overlay(self):
        net_a, eng_a = build_newscast_network(50, seed=11)
        net_b, eng_b = build_newscast_network(50, seed=11)
        eng_a.run(10)
        eng_b.run(10)
        for nid in range(50):
            va = sorted(net_a.node(nid).protocol("newscast").view.ids())
            vb = sorted(net_b.node(nid).protocol("newscast").view.ids())
            assert va == vb
