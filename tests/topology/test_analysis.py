"""Tests for overlay graph extraction and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.network import Network
from repro.topology.analysis import overlay_digraph, overlay_metrics, path_length_sample
from repro.topology.static import StaticTopologyProtocol


def build_static_network(adjacency: dict[int, list[int]], protocol="topology") -> Network:
    net = Network(rng=np.random.default_rng(0))
    for i in sorted(adjacency):
        node = net.create_node()
        node.attach(protocol, StaticTopologyProtocol(adjacency[i]))
    return net


class TestOverlayDigraph:
    def test_edges_follow_views(self):
        net = build_static_network({0: [1], 1: [2], 2: []})
        g = overlay_digraph(net, "topology")
        assert set(g.edges) == {(0, 1), (1, 2)}

    def test_live_only_filters_dead(self):
        net = build_static_network({0: [1, 2], 1: [0], 2: [0]})
        net.crash(2)
        g = overlay_digraph(net, "topology")
        assert 2 not in g.nodes
        assert set(g.edges) == {(0, 1), (1, 0)}

    def test_nodes_without_protocol_included_as_isolates(self):
        net = Network(rng=np.random.default_rng(0))
        net.create_node()  # no protocol attached
        g = overlay_digraph(net, "topology")
        assert list(g.nodes) == [0]
        assert g.number_of_edges() == 0


class TestOverlayMetrics:
    def test_ring_metrics(self):
        adjacency = {i: [(i + 1) % 6, (i - 1) % 6] for i in range(6)}
        net = build_static_network(adjacency)
        m = overlay_metrics(net, "topology")
        assert m.nodes == 6
        assert m.weakly_connected
        assert m.mean_out_degree == pytest.approx(2.0)
        assert m.stale_fraction == 0.0

    def test_disconnected_detected(self):
        net = build_static_network({0: [1], 1: [0], 2: [3], 3: [2]})
        assert not overlay_metrics(net, "topology").weakly_connected

    def test_stale_fraction_counts_dead_targets(self):
        net = build_static_network({0: [1, 2], 1: [0], 2: [0]})
        net.crash(2)
        m = overlay_metrics(net, "topology")
        # Views: 0->[1,2] (one stale), 1->[0]. 2 is dead (excluded).
        assert m.stale_fraction == pytest.approx(1 / 3)

    def test_empty_network(self):
        net = Network(rng=np.random.default_rng(0))
        m = overlay_metrics(net, "topology")
        assert m.nodes == 0
        assert not m.weakly_connected


class TestPathLength:
    def test_ring_path_length(self, rng):
        n = 8
        adjacency = {i: [(i + 1) % n, (i - 1) % n] for i in range(n)}
        net = build_static_network(adjacency)
        mean_len = path_length_sample(net, "topology", pairs=300, rng=rng)
        # Ring of 8: expected distance over distinct pairs is 16/7 ≈ 2.29.
        assert 1.8 < mean_len < 2.8

    def test_disconnected_gives_inf(self, rng):
        net = build_static_network({0: [1], 1: [0], 2: [], 3: []})
        assert path_length_sample(net, "topology", pairs=50, rng=rng) == float("inf")

    def test_trivial_networks(self, rng):
        net = build_static_network({0: []})
        assert path_length_sample(net, "topology", rng=rng) == 0.0
