"""CYCLON behaviour tests against the protocol's published claims.

Claims (Voulgaris et al. 2005): views stay at exactly ``c`` entries in
steady state; in-degree concentrates around ``c`` (much tighter than
NEWSCAST); clustering is near random-graph level; crashed peers are
evicted within ~``c`` cycles through the oldest-entry selection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.topology.analysis import overlay_digraph, overlay_metrics
from repro.topology.cyclon import CyclonConfig, CyclonProtocol, bootstrap_cyclon
from repro.topology.newscast import NewscastProtocol, bootstrap_views
from repro.utils.config import NewscastConfig
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import SeedSequenceTree


def build_cyclon_network(n, view_size=20, shuffle_length=8, seed=0):
    tree = SeedSequenceTree(seed)
    net = Network(rng=tree.rng("network"))
    cfg = CyclonConfig(view_size=view_size, shuffle_length=shuffle_length)

    def factory(node):
        node.attach(
            CyclonProtocol.PROTOCOL_NAME,
            CyclonProtocol(cfg, tree.rng("node", node.node_id)),
        )

    net.populate(n, factory=factory)
    bootstrap_cyclon(net, tree.rng("bootstrap"))
    engine = CycleDrivenEngine(net, rng=tree.rng("engine"))
    return net, engine


class TestConfig:
    def test_defaults(self):
        cfg = CyclonConfig()
        assert cfg.view_size == 20
        assert cfg.shuffle_length == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CyclonConfig(view_size=0)
        with pytest.raises(ConfigurationError):
            CyclonConfig(view_size=5, shuffle_length=6)
        with pytest.raises(ConfigurationError):
            CyclonConfig(shuffle_length=0)


class TestViewInvariants:
    def test_views_stay_at_capacity(self):
        net, engine = build_cyclon_network(80, view_size=10)
        engine.run(30)
        sizes = [node.protocol("cyclon").view_size for node in net.live_nodes()]
        assert np.mean(sizes) > 9.0
        assert max(sizes) <= 10

    def test_view_never_contains_self(self):
        net, engine = build_cyclon_network(40, view_size=8)
        engine.run(25)
        for node in net.live_nodes():
            assert node.node_id not in node.protocol("cyclon").view

    def test_no_duplicate_ids_by_construction(self):
        net, engine = build_cyclon_network(40, view_size=8)
        engine.run(25)
        for node in net.live_nodes():
            ids = list(node.protocol("cyclon").view)
            assert len(ids) == len(set(ids))

    def test_shuffle_counters_balance(self):
        net, engine = build_cyclon_network(30)
        engine.run(10)
        initiated = sum(
            n.protocol("cyclon").shuffles_initiated for n in net.live_nodes()
        )
        received = sum(
            n.protocol("cyclon").shuffles_received for n in net.live_nodes()
        )
        assert initiated == received
        assert initiated > 0


class TestEmergentOverlay:
    def test_connected_at_c20(self):
        net, engine = build_cyclon_network(200, seed=3)
        engine.run(30)
        m = overlay_metrics(net, "cyclon")
        assert m.weakly_connected
        assert m.mean_out_degree > 19.0

    def test_in_degree_tighter_than_newscast(self):
        """CYCLON's headline property: the in-degree distribution is
        much more concentrated than NEWSCAST's."""
        net_c, eng_c = build_cyclon_network(200, seed=5)
        eng_c.run(40)
        cyclon_std = overlay_metrics(net_c, "cyclon").in_degree_std

        tree = SeedSequenceTree(5)
        net_n = Network(rng=tree.rng("network"))
        cfg = NewscastConfig(view_size=20)
        net_n.populate(
            200,
            factory=lambda node: node.attach(
                "newscast", NewscastProtocol(cfg, tree.rng("n", node.node_id))
            ),
        )
        bootstrap_views(net_n, tree.rng("bootstrap"))
        CycleDrivenEngine(net_n, rng=tree.rng("engine")).run(40)
        newscast_std = overlay_metrics(net_n, "newscast").in_degree_std

        assert cyclon_std < newscast_std

    def test_clustering_low(self):
        net, engine = build_cyclon_network(200, seed=7)
        engine.run(40)
        m = overlay_metrics(net, "cyclon")
        # Random graph with c=20/200 has clustering ≈ 0.1; CYCLON
        # should be in that regime, far below NEWSCAST's ~0.4+.
        assert m.clustering < 0.3


class TestSelfRepair:
    def test_dead_entries_evicted_within_view_size_cycles(self):
        net, engine = build_cyclon_network(100, view_size=10, seed=9)
        engine.run(15)
        for nid in range(25):
            net.crash(nid)
        stale_now = overlay_metrics(net, "cyclon").stale_fraction
        assert stale_now > 0.05
        # Oldest-first selection cycles through the whole view in ≤ c
        # cycles, so ~2c cycles clear all stale entries.
        engine.run(25)
        assert overlay_metrics(net, "cyclon").stale_fraction < 0.02

    def test_overlay_survives_crash_wave(self):
        net, engine = build_cyclon_network(150, seed=9)
        engine.run(15)
        for nid in range(50):
            net.crash(nid)
        engine.run(20)
        assert overlay_metrics(net, "cyclon").weakly_connected

    def test_joiner_absorbed(self):
        net, engine = build_cyclon_network(40, seed=2)
        engine.run(10)
        tree = SeedSequenceTree(77)
        joiner = net.create_node(birth_cycle=engine.cycle)
        proto = CyclonProtocol(CyclonConfig(view_size=10), tree.rng("j"))
        joiner.attach("cyclon", proto)
        proto.on_join(joiner, engine)
        assert proto.view_size == 1
        engine.run(15)
        assert proto.view_size > 3
        g = overlay_digraph(net, "cyclon")
        assert g.in_degree(joiner.node_id) > 0


class TestAsFrameworkTopology:
    def test_drop_in_replacement_for_newscast(self):
        """CYCLON slots into the full optimization stack through the
        PeerSampler interface — the framework's modularity claim."""
        from repro.core.node import OptimizationNodeSpec, build_optimization_node
        from repro.core.metrics import global_best, total_evaluations
        from repro.functions.base import get_function
        from repro.utils.config import CoordinationConfig, PSOConfig
        from repro.utils.config import NewscastConfig as NC

        tree = SeedSequenceTree(123)
        cyclon_cfg = CyclonConfig(view_size=12, shuffle_length=5)
        spec = OptimizationNodeSpec(
            function=get_function("sphere"),
            pso=PSOConfig(particles=6),
            newscast=NC(),
            coordination=CoordinationConfig(),
            rng_tree=tree,
            evals_per_cycle=6,
            budget_per_node=600,
            topology_factory=lambda nid: (
                CyclonProtocol.PROTOCOL_NAME,
                CyclonProtocol(cyclon_cfg, tree.rng("cyclon", nid)),
            ),
        )
        net = Network(rng=tree.rng("network"))
        net.populate(16, factory=lambda node: build_optimization_node(node, spec))
        bootstrap_cyclon(net, tree.rng("bootstrap"))
        engine = CycleDrivenEngine(net, rng=tree.rng("engine"))
        engine.run(110)
        assert total_evaluations(net) == 16 * 600
        assert global_best(net) < 1e3

    def test_deterministic(self):
        a_net, a_eng = build_cyclon_network(50, seed=11)
        b_net, b_eng = build_cyclon_network(50, seed=11)
        a_eng.run(10)
        b_eng.run(10)
        for nid in range(50):
            assert sorted(a_net.node(nid).protocol("cyclon").view) == sorted(
                b_net.node(nid).protocol("cyclon").view
            )
