"""Tests for T-Man topology construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.engine import CycleDrivenEngine
from repro.simulator.network import Network
from repro.topology.newscast import NewscastProtocol, bootstrap_views
from repro.topology.tman import (
    TManProtocol,
    line_distance,
    ring_distance,
    target_neighbors,
)
from repro.utils.config import NewscastConfig
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import SeedSequenceTree


def build_tman_network(n, view_size=4, seed=0, rank=None, with_newscast=True):
    tree = SeedSequenceTree(seed)
    net = Network(rng=tree.rng("network"))
    rank = rank if rank is not None else ring_distance(n)

    def factory(node):
        nid = node.node_id
        if with_newscast:
            node.attach(
                "newscast",
                NewscastProtocol(NewscastConfig(view_size=10), tree.rng("nc", nid)),
            )
        node.attach(
            "tman",
            TManProtocol(
                rank,
                view_size,
                tree.rng("tman", nid),
                peer_sampling_protocol="newscast" if with_newscast else None,
            ),
        )

    net.populate(n, factory=factory)
    if with_newscast:
        bootstrap_views(net, tree.rng("bootstrap"))
    # Seed T-Man views with one random contact each.
    rng = tree.rng("tman-bootstrap")
    live = net.live_ids()
    for nid in live:
        others = [x for x in live if x != nid]
        net.node(nid).protocol("tman").view.add(
            others[int(rng.integers(len(others)))]
        )
    engine = CycleDrivenEngine(net, rng=tree.rng("engine"))
    return net, engine


def ring_score(net, n, view_size) -> float:
    """Fraction of ideal ring neighbors present across all views."""
    rank = ring_distance(n)
    ids = net.live_ids()
    hits = 0
    total = 0
    for nid in ids:
        ideal = target_neighbors(rank, nid, ids, view_size)
        got = set(net.node(nid).protocol("tman").view)
        hits += len(ideal & got)
        total += len(ideal)
    return hits / total


class TestRankingFunctions:
    def test_ring_distance_wraps(self):
        rank = ring_distance(10)
        assert rank(0, 1) == 1.0
        assert rank(0, 9) == 1.0  # wrap
        assert rank(0, 5) == 5.0
        assert rank(3, 3) == 0.0

    def test_ring_requires_two(self):
        with pytest.raises(ConfigurationError):
            ring_distance(1)

    def test_line_distance(self):
        rank = line_distance()
        assert rank(2, 7) == 5.0
        assert rank(7, 2) == 5.0


class TestConstruction:
    def test_converges_to_ring(self):
        n, c = 40, 4
        net, engine = build_tman_network(n, view_size=c, seed=1)
        initial = ring_score(net, n, c)
        engine.run(30)
        final = ring_score(net, n, c)
        assert final > 0.9
        assert final > initial

    def test_stalls_without_peer_sampling(self):
        """Documented failure mode: without the random-peer escape
        hatch, rank-greedy exchanges reach a frozen configuration and
        construction stalls — the reason T-Man is specified *on top
        of* a peer-sampling service."""
        n, c = 16, 4
        net, engine = build_tman_network(n, view_size=c, seed=2, with_newscast=False)
        engine.run(10)
        frozen = ring_score(net, n, c)
        engine.run(70)
        assert ring_score(net, n, c) == pytest.approx(frozen)
        assert frozen < 0.7  # nowhere near the target structure

    def test_line_target(self):
        n, c = 24, 2
        net, engine = build_tman_network(
            n, view_size=c, seed=3, rank=line_distance()
        )
        engine.run(40)
        # Interior nodes should know their immediate line neighbors.
        hits = 0
        for nid in range(1, n - 1):
            view = net.node(nid).protocol("tman").view
            hits += (nid - 1 in view) + (nid + 1 in view)
        assert hits / (2 * (n - 2)) > 0.8

    def test_views_bounded(self):
        net, engine = build_tman_network(30, view_size=3, seed=4)
        engine.run(25)
        for node in net.live_nodes():
            assert len(node.protocol("tman").view) <= 3
            assert node.node_id not in node.protocol("tman").view


class TestFailureHandling:
    def test_dead_neighbors_evicted_on_contact(self):
        net, engine = build_tman_network(30, view_size=4, seed=5)
        engine.run(20)
        for nid in range(8):
            net.crash(nid)
        engine.run(20)
        for node in net.live_nodes():
            dead_in_view = [
                b for b in node.protocol("tman").view if not net.is_alive(b)
            ]
            # Rank-based eviction only happens on contact; by 20 cycles
            # almost everything stale is gone.
            assert len(dead_in_view) <= 1

    def test_joiner_integrates(self):
        n, c = 30, 4
        net, engine = build_tman_network(n, view_size=c, seed=6)
        engine.run(20)
        tree = SeedSequenceTree(99)
        joiner = net.create_node()
        joiner.attach(
            "newscast",
            NewscastProtocol(NewscastConfig(view_size=10), tree.rng("nc")),
        )
        proto = TManProtocol(
            ring_distance(n + 1), c, tree.rng("tm"),
            peer_sampling_protocol="newscast",
        )
        joiner.attach("tman", proto)
        for name in ("newscast", "tman"):
            joiner.protocol(name).on_join(joiner, engine)
        engine.run(25)
        # The joiner (id 30 in a 31-ring) should have found neighbors
        # near itself.
        rank = ring_distance(n + 1)
        assert proto.view
        mean_rank = np.mean([rank(30, b) for b in proto.view])
        assert mean_rank < 6.0


class TestValidation:
    def test_bad_view_size(self):
        with pytest.raises(ConfigurationError):
            TManProtocol(ring_distance(4), 0, np.random.default_rng(0))

    def test_bad_random_fraction(self):
        with pytest.raises(ConfigurationError):
            TManProtocol(
                ring_distance(4), 2, np.random.default_rng(0),
                random_fraction=1.5,
            )

    def test_target_neighbors_helper(self):
        rank = ring_distance(8)
        ideal = target_neighbors(rank, 0, range(8), 2)
        assert ideal == {1, 7}
