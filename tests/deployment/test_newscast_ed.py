"""Tests for the event-driven NEWSCAST protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.deployment.newscast_ed import EventNewscastProtocol
from repro.simulator.engine import EventDrivenEngine
from repro.simulator.network import Network
from repro.simulator.transport import (
    LossyTransport,
    ReliableTransport,
    UniformLatencyTransport,
)
from repro.topology.analysis import overlay_metrics
from repro.topology.newscast import bootstrap_views
from repro.utils.config import NewscastConfig
from repro.utils.rng import SeedSequenceTree


def build(n, view_size=10, seed=0, loss_rate=0.0, latency=(0.1, 0.5)):
    tree = SeedSequenceTree(seed)
    net = Network(rng=tree.rng("network"))
    cfg = NewscastConfig(view_size=view_size)

    def factory(node):
        node.attach(
            "newscast", EventNewscastProtocol(cfg, tree.rng("nc", node.node_id))
        )

    net.populate(n, factory=factory)
    bootstrap_views(net, tree.rng("bootstrap"), protocol_name="newscast")
    transport = UniformLatencyTransport(
        tree.rng("latency"), min_delay=latency[0], max_delay=latency[1]
    )
    if loss_rate > 0:
        transport = LossyTransport(transport, loss_rate, tree.rng("loss"))
    engine = EventDrivenEngine(net, transport=transport, rng=tree.rng("engine"))

    # One shuffle per node per second, random phase.
    for node in net.live_nodes():
        proto = node.protocol("newscast")
        nid = node.node_id

        def fire(eng, nid=nid):
            if not net.is_alive(nid):
                return
            node_obj = net.node(nid)
            node_obj.protocol("newscast").initiate(node_obj, eng)
            eng.schedule(eng.now + 1.0, lambda e: fire(e, nid))

        engine.schedule(float(tree.rng("phase", nid).random()), lambda e, nid=nid: fire(e, nid))
    return net, engine


class TestMixing:
    def test_views_fill_and_mix(self):
        net, engine = build(60, view_size=10, seed=1)
        engine.run(until=30.0)
        sizes = [n.protocol("newscast").view_size for n in net.live_nodes()]
        assert np.mean(sizes) > 9.0
        m = overlay_metrics(net, "newscast")
        assert m.weakly_connected

    def test_no_self_entries(self):
        net, engine = build(30, seed=2)
        engine.run(until=20.0)
        for node in net.live_nodes():
            assert node.node_id not in node.protocol("newscast").view

    def test_request_reply_accounting(self):
        net, engine = build(20, seed=3)
        engine.run(until=15.0)
        reqs = sum(n.protocol("newscast").requests_sent for n in net.live_nodes())
        reps = sum(n.protocol("newscast").replies_sent for n in net.live_nodes())
        merges = sum(n.protocol("newscast").merges for n in net.live_nodes())
        assert reqs > 0
        # Lossless: every request produces a reply and two merges.
        assert reps == pytest.approx(reqs, abs=reqs * 0.1)  # in-flight tail
        assert merges >= reqs


class TestLossTolerance:
    def test_mixing_survives_heavy_loss(self):
        net, engine = build(60, view_size=10, seed=4, loss_rate=0.4)
        engine.run(until=60.0)
        m = overlay_metrics(net, "newscast")
        assert m.weakly_connected
        sizes = [n.protocol("newscast").view_size for n in net.live_nodes()]
        assert np.mean(sizes) > 8.0

    def test_self_repair_under_latency(self):
        net, engine = build(80, view_size=10, seed=5)
        engine.run(until=20.0)
        for nid in range(20):
            net.crash(nid)
        assert overlay_metrics(net, "newscast").stale_fraction > 0.05
        engine.run(until=80.0)
        assert overlay_metrics(net, "newscast").stale_fraction < 0.05


class TestProtocolEdgeCases:
    def test_empty_view_does_not_initiate(self):
        tree = SeedSequenceTree(0)
        net = Network(rng=tree.rng("network"))
        node = net.create_node()
        proto = EventNewscastProtocol(NewscastConfig(view_size=5), tree.rng("p"))
        node.attach("newscast", proto)
        engine = EventDrivenEngine(net, transport=ReliableTransport(),
                                   rng=tree.rng("engine"))
        assert proto.initiate(node, engine) is False
        assert proto.requests_sent == 0

    def test_unknown_payload_rejected(self):
        tree = SeedSequenceTree(0)
        net = Network(rng=tree.rng("network"))
        node = net.create_node()
        proto = EventNewscastProtocol(NewscastConfig(view_size=5), tree.rng("p"))
        node.attach("newscast", proto)
        engine = EventDrivenEngine(net, transport=ReliableTransport(),
                                   rng=tree.rng("engine"))
        from repro.simulator.transport import Message

        with pytest.raises(ValueError):
            proto.deliver(node, engine, Message(1, 0, "newscast", ("bogus", [])))

    def test_on_join_bootstraps_one_contact(self):
        net, engine = build(10, seed=6)
        engine.run(until=5.0)
        tree = SeedSequenceTree(9)
        joiner = net.create_node()
        proto = EventNewscastProtocol(NewscastConfig(view_size=5), tree.rng("j"))
        joiner.attach("newscast", proto)
        proto.on_join(joiner, engine)
        assert proto.view_size == 1
