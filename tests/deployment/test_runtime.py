"""Tests for the asynchronous deployment runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.runner import run_single
from repro.deployment import AsyncDeployment, DeploymentConfig
from repro.utils.config import ExperimentConfig
from repro.utils.exceptions import ConfigurationError


def make_config(**overrides) -> DeploymentConfig:
    base = dict(
        function="sphere",
        nodes=12,
        particles_per_node=8,
        budget_per_node=800,
        evals_per_tick=8,
        seed=9,
    )
    base.update(overrides)
    return DeploymentConfig(**base)


class TestBasicExecution:
    def test_budget_exactly_consumed(self):
        result = AsyncDeployment(make_config()).run(until=5000.0)
        assert result.total_evaluations == 12 * 800
        assert result.stop_reason == "budget"

    def test_quality_sane(self):
        result = AsyncDeployment(make_config()).run(until=5000.0)
        assert 0.0 <= result.quality < 1e4

    def test_horizon_stop(self):
        result = AsyncDeployment(make_config(budget_per_node=10**6)).run(until=20.0)
        assert result.stop_reason == "horizon"
        assert result.sim_time == pytest.approx(20.0)

    def test_threshold_stop(self):
        result = AsyncDeployment(
            make_config(budget_per_node=50_000, quality_threshold=1e-3)
        ).run(until=50_000.0)
        assert result.stop_reason == "threshold"
        assert result.threshold_time is not None
        assert result.quality <= 1e-3

    def test_history_monotone(self):
        result = AsyncDeployment(make_config()).run(until=5000.0)
        bests = [b for _, _, b in result.history]
        finite = [b for b in bests if np.isfinite(b)]
        assert all(b2 <= b1 + 1e-15 for b1, b2 in zip(finite, finite[1:]))

    def test_messages_flow(self):
        result = AsyncDeployment(make_config()).run(until=5000.0)
        assert result.messages.coordination_messages > 0
        assert result.messages.newscast_exchanges > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_config(nodes=0)
        with pytest.raises(ConfigurationError):
            make_config(loss_rate=1.0)
        with pytest.raises(ConfigurationError):
            make_config(latency_min=2.0, latency_max=1.0)
        with pytest.raises(ConfigurationError):
            make_config(compute_period=0.0)
        with pytest.raises(ValueError):
            AsyncDeployment(make_config()).run(until=0.0)

    @pytest.mark.parametrize("field,value", [
        ("compute_period", 0.0),
        ("compute_period", -1.0),
        ("compute_period", float("nan")),
        ("compute_period", float("inf")),
        ("newscast_period", 0.0),
        ("newscast_period", float("nan")),
        ("gossip_period", -2.5),
        ("monitor_period", 0.0),
        ("crash_rate", -0.1),
        ("crash_rate", float("nan")),
        ("join_rate", -1.0),
        ("join_rate", float("inf")),
        ("particles_per_node", 0),
        ("min_population", 0),
        ("quality_threshold", 0.0),
        ("quality_threshold", -1e-3),
        ("quality_threshold", float("nan")),
        ("clock_jitter", float("nan")),
        ("latency_min", float("nan")),
        ("latency_max", float("nan")),
        ("seed", -1),
    ])
    def test_construction_rejects_bad_field_with_clear_message(
        self, field, value
    ):
        # Each of these used to be representable and only blew up (or
        # silently misbehaved) mid-run inside the event heap — NaN
        # timestamps have no heap order, non-positive periods schedule
        # into the past.  Construction must reject them and name the
        # field.
        with pytest.raises(ConfigurationError) as err:
            make_config(**{field: value})
        message = str(err.value)
        assert field in message or f"DeploymentConfig.{field}" in message

    def test_latency_ordering_error_blames_latency_max(self):
        with pytest.raises(ConfigurationError) as err:
            make_config(latency_min=2.0, latency_max=1.0)
        assert "DeploymentConfig.latency_max" in str(err.value)


class TestDeterminism:
    def test_same_seed_identical(self):
        a = AsyncDeployment(make_config()).run(until=3000.0)
        b = AsyncDeployment(make_config()).run(until=3000.0)
        assert a.best_value == b.best_value
        assert a.total_evaluations == b.total_evaluations
        assert a.messages.transport_sent == b.messages.transport_sent

    def test_different_seed_differs(self):
        a = AsyncDeployment(make_config(seed=1)).run(until=3000.0)
        b = AsyncDeployment(make_config(seed=2)).run(until=3000.0)
        assert a.best_value != b.best_value


class TestDegradedNetworks:
    def test_runs_under_message_loss(self):
        lossless = AsyncDeployment(make_config()).run(until=5000.0)
        lossy = AsyncDeployment(make_config(loss_rate=0.3)).run(until=5000.0)
        assert lossy.total_evaluations == lossless.total_evaluations
        # Loss slows diffusion, not computation: quality stays in a
        # sane band (paper Sec. 3.3.4).
        assert np.isfinite(lossy.quality)

    def test_high_latency_tolerated(self):
        result = AsyncDeployment(
            make_config(latency_min=2.0, latency_max=8.0)
        ).run(until=5000.0)
        assert result.stop_reason == "budget"
        assert np.isfinite(result.quality)


class TestChurnEvents:
    def test_poisson_churn_runs(self):
        result = AsyncDeployment(
            make_config(
                nodes=24, crash_rate=0.05, join_rate=0.05, min_population=6,
                budget_per_node=2000,
            )
        ).run(until=400.0)
        assert result.crashes > 0
        assert result.joins > 0
        assert np.isfinite(result.quality)

    def test_population_floor_respected(self):
        deployment = AsyncDeployment(
            make_config(nodes=8, crash_rate=1.0, min_population=3,
                        budget_per_node=10**6)
        )
        deployment.run(until=100.0)
        assert deployment.network.live_count >= 3


class TestCycleEquivalence:
    """The fidelity claim: asynchronous deployment lands in the same
    quality regime as the cycle-driven simulation of the same
    configuration (same n, k, per-node budget, gossip-per-evals)."""

    def test_async_matches_cycle_driven_regime(self):
        n, k, budget = 16, 8, 2000
        cycle_cfg = ExperimentConfig(
            function="sphere", nodes=n, particles_per_node=k,
            total_evaluations=n * budget, gossip_cycle=8,
            repetitions=3, seed=77,
        )
        cycle_logq = np.median(
            [np.log10(max(run_single(cycle_cfg, rep).quality, 1e-300))
             for rep in range(3)]
        )
        async_logq = np.median(
            [
                np.log10(
                    max(
                        AsyncDeployment(
                            DeploymentConfig(
                                function="sphere", nodes=n,
                                particles_per_node=k, budget_per_node=budget,
                                evals_per_tick=8,
                                # gossip as often as compute ticks, like r=8
                                compute_period=1.0, gossip_period=1.0,
                                newscast_period=2.0, seed=seed,
                            )
                        ).run(until=50_000.0).quality,
                        1e-300,
                    )
                )
                for seed in (1, 2, 3)
            ]
        )
        # Same regime = within a few orders of magnitude on a scale
        # where configuration changes move results by tens of orders.
        assert abs(cycle_logq - async_logq) < 8.0
